#include "control/receiver_agent.hpp"

#include <algorithm>

namespace tsim::control {

ReceiverAgent::ReceiverAgent(sim::Simulation& simulation,
                             transport::ReceiverEndpoint& endpoint, Config config)
    : simulation_{simulation}, endpoint_{endpoint}, config_{config} {
  endpoint_.on_suggestion([this](const transport::Suggestion& suggestion) {
    // Stale-but-reordered suggestions are impossible over our FIFO links, but
    // a lost interval makes epochs skip; accept any epoch >= the last seen.
    if (suggestion.epoch < last_epoch_) return;
    last_epoch_ = suggestion.epoch;
    note_gap(simulation_.now());
    last_suggestion_ = simulation_.now();
    ++suggestions_applied_;
    endpoint_.set_subscription(suggestion.subscription);
  });
}

sim::Time ReceiverAgent::silence_horizon() const {
  if (config_.expected_interval > sim::Time::zero()) {
    return config_.expected_interval * std::max(config_.missed_intervals, 1);
  }
  return config_.unilateral_timeout;
}

void ReceiverAgent::start() {
  last_suggestion_ = config_.start;
  if (config_.enable_unilateral) {
    simulation_.at(config_.start + config_.check_period, [this]() { check_silence(); });
  }
}

void ReceiverAgent::note_gap(sim::Time now) {
  if (now > last_suggestion_) max_gap_ = std::max(max_gap_, now - last_suggestion_);
}

void ReceiverAgent::check_silence() {
  const sim::Time now = simulation_.now();
  if (endpoint_.active()) {
    note_gap(now);
    const auto& window = endpoint_.last_completed_window();
    const double loss = window.loss_rate().value();
    // Total silence on the data plane is invisible to sequence-gap loss
    // detection (no packets, no gaps), so a subscribed-but-starved receiver
    // must be treated like a catastrophic-loss one: the path is likely down.
    const bool starved = endpoint_.subscription() > 0 &&
                         window.received_packets == units::PacketCount::zero() &&
                         window.lost_packets == units::PacketCount::zero();
    const sim::Time horizon = silence_horizon();
    const sim::Time emergency =
        std::min(horizon, std::max(config_.emergency_timeout, config_.check_period));
    const sim::Time silence = now - last_suggestion_;
    if (silence > horizon) gap_time_ = gap_time_ + config_.check_period;

    const bool emergency_case = loss > config_.emergency_loss || starved;
    if (silence > (emergency_case ? emergency : horizon)) {
      // No guidance: protect the network on our own, one layer at a time.
      if ((loss > config_.unilateral_drop_loss || starved) && endpoint_.subscription() > 1) {
        endpoint_.set_subscription(endpoint_.subscription() - 1);
        ++unilateral_drops_;
        last_suggestion_ = now;  // give the drop time to take effect
        if (unilateral_hook_) {
          unilateral_hook_(UnilateralAction{false, loss, starved, endpoint_.subscription()});
        }
      } else if (config_.enable_unilateral_add && !starved &&
                 loss < config_.unilateral_add_loss &&
                 window.received_packets > units::PacketCount::zero() &&
                 endpoint_.subscription() <
                     static_cast<int>(endpoint_.config().layers.num_layers) &&
                 now - last_unilateral_add_ >= config_.add_holdoff) {
        // Data flows cleanly but the controller is mute: probe one layer up
        // (the receiver-driven fallback), spaced by the add holdoff so a
        // failed probe's congestion clears before the next attempt.
        endpoint_.set_subscription(endpoint_.subscription() + 1);
        ++unilateral_adds_;
        last_unilateral_add_ = now;
        if (unilateral_hook_) {
          unilateral_hook_(UnilateralAction{true, loss, starved, endpoint_.subscription()});
        }
      }
    }
  }
  simulation_.after(config_.check_period, [this]() { check_silence(); });
}

}  // namespace tsim::control
