#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "control/adaptation_controller.hpp"
#include "control/controller_agent.hpp"
#include "control/receiver_agent.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "topo/provider.hpp"
#include "transport/demux.hpp"

namespace tsim::control {

/// One routing domain of a partitioned topology. The controller node doubles
/// as the domain's border: it is the root through which the parent domain's
/// tree enters, and the node the parent sees as the whole domain's
/// pseudo-receiver.
struct Domain {
  std::string name;
  net::NodeId controller_node{net::kInvalidNode};
  std::vector<net::NodeId> nodes;  ///< nodes this domain owns (incl. controller_node)
  int parent{-1};                  ///< index of the parent domain, -1 for a root
};

/// The paper's per-domain deployment unit for TopoSense: a topology provider
/// scoped to the domain, the controller agent consuming only this domain's
/// receiver reports, and the per-receiver watchdog agents — constructed and
/// started in exactly the order the single-controller scenario wiring used,
/// so a one-domain run is bit-identical to the pre-domain code (pinned by
/// tests/control/domain_manager_test.cpp).
class TopoSenseDomain final : public AdaptationController {
 public:
  struct Config {
    ControllerAgent::Config agent{};
    ReceiverAgent::Config watchdog{};
    bool install_watchdogs{true};
  };

  TopoSenseDomain(sim::Simulation& simulation, net::Network& network,
                  transport::DemuxRegistry& demuxes,
                  std::unique_ptr<topo::TopologyProvider> discovery, Config config);

  ReceiverAgent* register_receiver(transport::ReceiverEndpoint& endpoint) override;
  void start() override;
  void start_receiver_policies() override;
  void set_enabled(bool enabled) override { agent_->set_enabled(enabled); }
  [[nodiscard]] bool enabled() const override { return agent_->enabled(); }
  [[nodiscard]] ControllerStats stats() const override { return agent_->stats(); }

  [[nodiscard]] ControllerAgent& agent() { return *agent_; }
  [[nodiscard]] const ControllerAgent& agent() const { return *agent_; }
  [[nodiscard]] topo::TopologyProvider& discovery() { return *discovery_; }
  [[nodiscard]] const std::vector<std::unique_ptr<ReceiverAgent>>& watchdogs() const {
    return watchdogs_;
  }

 private:
  sim::Simulation& simulation_;
  Config config_;
  std::unique_ptr<topo::TopologyProvider> discovery_;
  std::unique_ptr<ControllerAgent> agent_;
  std::vector<std::unique_ptr<ReceiverAgent>> watchdogs_;
};

/// Composes one adaptation scheme per routing domain behind the single
/// AdaptationController the scenario wiring talks to, and runs the
/// inter-domain control plane between them:
///
///   * receivers are routed to their domain's scheme by node ownership;
///   * each child domain periodically compresses its state into a
///     DomainSummary and unicasts it (a real kSummary packet, subject to
///     queueing and loss) to its parent's controller, where it is ingested as
///     a synthetic report from the child's border node;
///   * the parent's prescriptions for border pseudo-receivers come back as
///     kCap summaries that clamp the child's own prescriptions, so a
///     bottleneck above the border still binds receivers the parent has
///     never heard of.
///
/// Scheme construction is delegated to a factory, so the manager composes N
/// controllers without branching on a controller kind; the summary exchange
/// arms itself only when every domain's scheme exposes a ControllerAgent
/// (receiver-driven and null schemes run their domains fully independently).
class DomainManager final : public AdaptationController {
 public:
  struct Config {
    std::vector<Domain> domains;  ///< at least one; parents must form a forest
    /// Child -> parent summary cadence and first exchange. The cap direction
    /// is event-driven (one cap per parent interval that prescribed for the
    /// border), so it needs no timer of its own.
    sim::Time summary_period{sim::Time::seconds(5)};
    sim::Time summary_start{sim::Time::seconds(5)};
  };

  /// Builds the scheme for one domain. Called once per domain, in domain
  /// order, during DomainManager construction.
  using SchemeFactory =
      std::function<std::unique_ptr<AdaptationController>(std::size_t index, const Domain&)>;

  /// Throws std::invalid_argument when the domain list is empty, a node is
  /// owned by two domains, a controller node is outside its own domain, or
  /// the parent links contain a cycle.
  DomainManager(sim::Simulation& simulation, net::Network& network,
                transport::DemuxRegistry& demuxes, Config config, const SchemeFactory& factory);

  /// Routes the endpoint to the scheme owning its node. Throws
  /// std::invalid_argument for nodes no domain owns.
  ReceiverAgent* register_receiver(transport::ReceiverEndpoint& endpoint) override;

  /// Starts every domain's scheme (in domain order), then arms the summary
  /// exchange: borders are registered with parent controllers for every
  /// session the child participates in, and the periodic demand timers are
  /// scheduled. Border registration happens here — not on first summary
  /// arrival — so the algorithm-input ordering never depends on packet
  /// timing.
  void start() override;
  void start_receiver_policies() override;

  /// Forwards to every domain (a fault that kills "the controller" kills the
  /// control plane, not one shard of it; per-domain outages can be injected
  /// through scheme(i).set_enabled).
  void set_enabled(bool enabled) override;
  [[nodiscard]] bool enabled() const override;
  [[nodiscard]] ControllerStats stats() const override;  ///< summed over domains

  [[nodiscard]] std::size_t domain_count() const { return entries_.size(); }
  [[nodiscard]] const Domain& domain(std::size_t index) const { return entries_[index].domain; }
  [[nodiscard]] AdaptationController& scheme(std::size_t index) {
    return *entries_[index].scheme;
  }
  /// The domain's ControllerAgent, or nullptr when its scheme is not
  /// TopoSense-based.
  [[nodiscard]] ControllerAgent* agent(std::size_t index) {
    return entries_[index].agent;
  }
  /// Domain owning `node`; -1 when unowned.
  [[nodiscard]] int domain_of(net::NodeId node) const;

  [[nodiscard]] bool summaries_enabled() const { return summaries_enabled_; }
  [[nodiscard]] std::uint64_t summaries_sent() const { return summaries_sent_; }
  [[nodiscard]] std::uint64_t summaries_received() const { return summaries_received_; }
  [[nodiscard]] std::uint64_t caps_sent() const { return caps_sent_; }
  [[nodiscard]] std::uint64_t caps_received() const { return caps_received_; }

  /// Summary-consistency sweep for the invariant auditor: re-validates the
  /// partition, checks cap ranges against the layer count, counter sanity
  /// (received <= sent: the network may lose summaries, never mint them) and
  /// replays any protocol violations recorded at ingest (non-monotonic
  /// summary windows, summaries for unknown borders). Invokes `report` once
  /// per failure with a human-readable detail.
  void check_consistency(const std::function<void(const std::string&)>& report) const;

 private:
  struct Entry {
    Domain domain;
    std::unique_ptr<AdaptationController> scheme;
    ControllerAgent* agent{nullptr};  ///< capability: non-null for TopoSense schemes
    std::uint32_t summary_seq{0};
  };

  void validate_partition() const;
  void send_summaries(std::size_t index);
  void handle_summary(std::size_t index, const net::Packet& packet);
  void send_cap(std::size_t parent_index, const core::Prescription& prescription);
  void note_violation(std::string detail);

  sim::Simulation& simulation_;
  net::Network& network_;
  Config config_;
  std::vector<Entry> entries_;
  std::unordered_map<net::NodeId, int> domain_of_node_;
  std::unordered_map<net::NodeId, std::size_t> child_of_border_;
  bool summaries_enabled_{false};
  std::uint64_t summaries_sent_{0};
  std::uint64_t summaries_received_{0};
  std::uint64_t caps_sent_{0};
  std::uint64_t caps_received_{0};
  /// (domain index << 32 | session) -> last ingested demand window_end.
  std::map<std::uint64_t, sim::Time> last_ingested_window_;
  std::vector<std::string> violations_;  ///< bounded; see note_violation
};

}  // namespace tsim::control
