#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "control/accounting.hpp"
#include "control/adaptation_controller.hpp"
#include "core/toposense.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "topo/provider.hpp"
#include "transport/control_messages.hpp"
#include "transport/demux.hpp"

namespace tsim::control {

/// The paper's per-domain controller agent. An application-level entity at
/// one node that (1) receives RTCP-like receiver reports, (2) pulls session
/// tree snapshots from the topology discovery tool, (3) runs TopoSense once
/// per interval, and (4) unicasts subscription suggestions back to the
/// receivers. All of its traffic traverses the simulated network and competes
/// with data, so reports and suggestions can be lost, as in the paper's
/// simulations.
///
/// In a multi-domain deployment (control::DomainManager) each domain runs one
/// agent over its own receivers only. A child domain appears to its parent as
/// a single pseudo-receiver at the domain's border node, fed by periodic
/// DomainSummary exchanges instead of raw reports (register_border_receiver /
/// ingest_border_summary), and the parent's prescription for that border
/// comes back as a subscription cap the child clamps its own prescriptions
/// to (set_session_cap).
class ControllerAgent final : public AdaptationController {
 public:
  struct Config {
    net::NodeId node{net::kInvalidNode};
    core::Params params{};
    /// Loss/report staleness: the algorithm only consumes reports whose
    /// window ended at or before now - info_staleness (Fig 10 pairs this with
    /// the topology staleness configured on the DiscoveryService).
    sim::Time info_staleness{sim::Time::zero()};
    sim::Time start{sim::Time::milliseconds(2500)};
    std::size_t report_history_limit{64};
  };

  ControllerAgent(sim::Simulation& simulation, net::Network& network,
                  topo::TopologyProvider& discovery, transport::PacketDemux& demux,
                  Config config);

  /// Receivers register on session join (§II); registration is a direct call
  /// because the paper treats it as out-of-band setup.
  void register_receiver(net::SessionId session, net::NodeId receiver);

  /// AdaptationController: registers by the endpoint's (session, node). The
  /// bare agent installs no per-receiver watchdog (TopoSenseDomain does).
  ReceiverAgent* register_receiver(transport::ReceiverEndpoint& endpoint) override;

  /// Starts the periodic algorithm runs at config.start.
  void start() override;

  /// The bare agent owns no per-receiver policy agents.
  void start_receiver_policies() override {}

  /// Fault hook: while disabled the controller neither consumes reports nor
  /// computes/sends suggestions (its interval timer keeps ticking so a
  /// restart needs no rescheduling).
  ///
  /// Restart semantics (pinned by tests/fault): disabling models the process
  /// dying, so the in-memory report history dies with it and must be
  /// re-learned after a restart (report_history_size() drops to zero, and the
  /// first post-restart intervals run on whatever fresh reports have arrived
  /// since). The accounting ledger() and the reports_received /
  /// suggestions_sent / intervals_run counters are durable billing and audit
  /// records — deliberately *retained* across outages, as a billing system
  /// that forgot charges on every crash would be useless. Session caps and
  /// border registrations (multi-domain state) are configuration, not learned
  /// state, and also survive.
  void set_enabled(bool enabled) override;
  [[nodiscard]] bool enabled() const override { return enabled_; }
  [[nodiscard]] std::uint64_t outages() const { return outages_; }
  [[nodiscard]] ControllerStats stats() const override;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const core::TopoSense& algorithm() const { return algorithm_; }
  [[nodiscard]] const core::AlgorithmOutput& last_output() const { return last_output_; }
  [[nodiscard]] std::uint64_t reports_received() const { return reports_received_; }
  [[nodiscard]] std::uint64_t suggestions_sent() const { return suggestions_sent_; }
  [[nodiscard]] std::uint64_t intervals_run() const { return epoch_; }

  /// Reports currently held in the learning history (all receivers). Zero
  /// right after an outage began — see set_enabled.
  [[nodiscard]] std::size_t report_history_size() const;

  /// Usage accounting built from the received reports (§II billing).
  [[nodiscard]] const AccountingLedger& ledger() const { return ledger_; }

  /// --- Inter-domain summary support (driven by DomainManager) -------------

  /// Declares `border` a pseudo-receiver of `session`: it participates in the
  /// algorithm like a registered receiver, but its "reports" are synthesized
  /// from child-domain summaries and its prescriptions go to the border hook
  /// instead of onto the wire as suggestions.
  void register_border_receiver(net::SessionId session, net::NodeId border);
  [[nodiscard]] bool is_border(net::SessionId session, net::NodeId node) const;

  /// Aggregates this domain's knowledge of `session` into a child->parent
  /// summary (see transport::DomainSummary for the semantics of each field).
  /// `window_end` bounds which reports are folded in, exactly like an
  /// algorithm interval would.
  [[nodiscard]] transport::DomainSummary build_session_summary(net::SessionId session,
                                                               sim::Time window_end) const;

  /// Folds a child-domain demand summary into the report history as a
  /// synthetic report from the border pseudo-receiver. Does not touch the
  /// billing ledger or reports_received (those count real wire reports; the
  /// child domain already bills its own receivers).
  void ingest_border_summary(const transport::DomainSummary& summary);
  [[nodiscard]] std::uint64_t summaries_ingested() const { return summaries_ingested_; }

  /// Upstream ceiling for `session` from the parent domain's prescription for
  /// our border; every outgoing prescription of the session is clamped to it.
  /// cap <= 0 removes the cap.
  void set_session_cap(net::SessionId session, int cap);
  [[nodiscard]] int session_cap(net::SessionId session) const;  ///< 0 = uncapped
  [[nodiscard]] std::uint64_t caps_applied() const { return caps_applied_; }

  /// Receives every prescription addressed to a border pseudo-receiver (in
  /// place of a wire suggestion). DomainManager turns these into downstream
  /// cap summaries.
  using BorderHook = std::function<void(const core::Prescription&)>;
  void set_border_hook(BorderHook hook) { border_hook_ = std::move(hook); }

  /// Registered receivers by session, in registration order. DomainManager
  /// reads this to know which sessions the domain participates in.
  [[nodiscard]] const std::map<net::SessionId, std::vector<net::NodeId>>& registered() const {
    return registered_;
  }

  /// Invoked after every enabled interval that ran the algorithm, with the
  /// exact input and output of that pass. The invariant auditor hangs its
  /// controller-postcondition checks here; the hook must not mutate agent
  /// state.
  using AuditHook = std::function<void(const core::AlgorithmInput&, const core::AlgorithmOutput&)>;
  void set_audit_hook(AuditHook hook) { audit_hook_ = std::move(hook); }

 private:
  void handle_report(const net::Packet& packet);
  void run_interval();
  void send_suggestion(const core::Prescription& prescription);
  /// The prescription's subscription after the session cap (if any).
  [[nodiscard]] int capped_subscription(const core::Prescription& prescription);

  /// Aggregate of the reports of one receiver that fall inside the algorithm
  /// window (respecting staleness).
  struct ReportAggregate {
    bool valid{false};
    units::LossFraction loss_rate{};
    units::Bytes bytes{};
    units::PacketCount received{};
    units::PacketCount lost{};
    int subscription{1};
  };
  [[nodiscard]] ReportAggregate aggregate_reports(net::SessionId session, net::NodeId receiver,
                                                  sim::Time window_end) const;

  sim::Simulation& simulation_;
  net::Network& network_;
  topo::TopologyProvider& discovery_;
  Config config_;
  core::TopoSense algorithm_;
  /// Ordered map: run_interval iterates this to build AlgorithmInput, and the
  /// session order must not depend on hash-table layout (determinism lint).
  std::map<net::SessionId, std::vector<net::NodeId>> registered_;
  /// (session<<32|receiver) -> recent reports, newest at the back.
  std::unordered_map<std::uint64_t, std::deque<transport::ReceiverReport>> reports_;
  core::AlgorithmOutput last_output_;
  AccountingLedger ledger_;
  std::uint64_t reports_received_{0};
  std::uint64_t suggestions_sent_{0};
  std::uint32_t epoch_{0};
  bool enabled_{true};
  std::uint64_t outages_{0};
  AuditHook audit_hook_;

  /// --- multi-domain state (empty and inert in single-domain runs) ---------
  /// (session<<32|node) border membership; std::map for deterministic sweeps.
  std::map<std::uint64_t, bool> borders_;
  std::map<net::SessionId, int> session_caps_;
  BorderHook border_hook_;
  std::uint64_t summaries_ingested_{0};
  std::uint64_t caps_applied_{0};
};

}  // namespace tsim::control
