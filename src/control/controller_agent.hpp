#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "control/accounting.hpp"
#include "core/toposense.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "topo/provider.hpp"
#include "transport/control_messages.hpp"
#include "transport/demux.hpp"

namespace tsim::control {

/// The paper's per-domain controller agent. An application-level entity at
/// one node that (1) receives RTCP-like receiver reports, (2) pulls session
/// tree snapshots from the topology discovery tool, (3) runs TopoSense once
/// per interval, and (4) unicasts subscription suggestions back to the
/// receivers. All of its traffic traverses the simulated network and competes
/// with data, so reports and suggestions can be lost, as in the paper's
/// simulations.
class ControllerAgent {
 public:
  struct Config {
    net::NodeId node{net::kInvalidNode};
    core::Params params{};
    /// Loss/report staleness: the algorithm only consumes reports whose
    /// window ended at or before now - info_staleness (Fig 10 pairs this with
    /// the topology staleness configured on the DiscoveryService).
    sim::Time info_staleness{sim::Time::zero()};
    sim::Time start{sim::Time::milliseconds(2500)};
    std::size_t report_history_limit{64};
  };

  ControllerAgent(sim::Simulation& simulation, net::Network& network,
                  topo::TopologyProvider& discovery, transport::PacketDemux& demux,
                  Config config);

  /// Receivers register on session join (§II); registration is a direct call
  /// because the paper treats it as out-of-band setup.
  void register_receiver(net::SessionId session, net::NodeId receiver);

  /// Starts the periodic algorithm runs at config.start.
  void start();

  /// Fault hook: while disabled the controller neither consumes reports nor
  /// computes/sends suggestions (its interval timer keeps ticking so a
  /// restart needs no rescheduling). Re-enabling models a process restart:
  /// the stored report history is discarded and must be re-learned.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] std::uint64_t outages() const { return outages_; }

  [[nodiscard]] const core::TopoSense& algorithm() const { return algorithm_; }
  [[nodiscard]] const core::AlgorithmOutput& last_output() const { return last_output_; }
  [[nodiscard]] std::uint64_t reports_received() const { return reports_received_; }
  [[nodiscard]] std::uint64_t suggestions_sent() const { return suggestions_sent_; }
  [[nodiscard]] std::uint64_t intervals_run() const { return epoch_; }

  /// Usage accounting built from the received reports (§II billing).
  [[nodiscard]] const AccountingLedger& ledger() const { return ledger_; }

  /// Invoked after every enabled interval that ran the algorithm, with the
  /// exact input and output of that pass. The invariant auditor hangs its
  /// controller-postcondition checks here; the hook must not mutate agent
  /// state.
  using AuditHook = std::function<void(const core::AlgorithmInput&, const core::AlgorithmOutput&)>;
  void set_audit_hook(AuditHook hook) { audit_hook_ = std::move(hook); }

 private:
  void handle_report(const net::Packet& packet);
  void run_interval();
  void send_suggestion(const core::Prescription& prescription);

  /// Aggregate of the reports of one receiver that fall inside the algorithm
  /// window (respecting staleness).
  struct ReportAggregate {
    bool valid{false};
    units::LossFraction loss_rate{};
    units::Bytes bytes{};
    int subscription{1};
  };
  [[nodiscard]] ReportAggregate aggregate_reports(net::SessionId session, net::NodeId receiver,
                                                  sim::Time window_end) const;

  sim::Simulation& simulation_;
  net::Network& network_;
  topo::TopologyProvider& discovery_;
  Config config_;
  core::TopoSense algorithm_;
  /// Ordered map: run_interval iterates this to build AlgorithmInput, and the
  /// session order must not depend on hash-table layout (determinism lint).
  std::map<net::SessionId, std::vector<net::NodeId>> registered_;
  /// (session<<32|receiver) -> recent reports, newest at the back.
  std::unordered_map<std::uint64_t, std::deque<transport::ReceiverReport>> reports_;
  core::AlgorithmOutput last_output_;
  AccountingLedger ledger_;
  std::uint64_t reports_received_{0};
  std::uint64_t suggestions_sent_{0};
  std::uint32_t epoch_{0};
  bool enabled_{true};
  std::uint64_t outages_{0};
  AuditHook audit_hook_;
};

}  // namespace tsim::control
