#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulation.hpp"
#include "transport/receiver_endpoint.hpp"

namespace tsim::control {

/// Receiver-side policy for TopoSense: obey controller suggestions, and act
/// unilaterally only when suggestion packets stop arriving (the paper's
/// resilience rule for lossy control channels and controller outages).
///
/// The watchdog counts missed controller intervals: after
/// `missed_intervals * expected_interval` of silence the receiver stops
/// trusting the controller and falls back to receiver-driven behaviour —
/// dropping a layer when its own loss is high (or when data stops entirely),
/// and cautiously probing one layer up when its loss is clean. Both paths
/// are rate-limited so a short suggestion gap never causes churn.
class ReceiverAgent {
 public:
  struct Config {
    /// The controller cadence this receiver expects (scenario wiring sets it
    /// to the algorithm interval). Zero falls back to the absolute
    /// `unilateral_timeout` below.
    sim::Time expected_interval{sim::Time::zero()};
    /// Missed intervals after which the receiver acts on its own.
    int missed_intervals{3};
    /// Absolute silence horizon used when expected_interval is zero.
    /// Suggestions ride the same queues as data, so during heavy congestion
    /// they are the first thing to die — the receiver must not wait long.
    sim::Time unilateral_timeout{sim::Time::seconds(6)};
    /// Shorter silence horizon used when loss is catastrophic (or data has
    /// stopped entirely): heavy loss is itself evidence that the suggestion
    /// packets are being lost with it.
    sim::Time emergency_timeout{sim::Time::seconds(3)};
    /// How often the silence check runs.
    sim::Time check_period{sim::Time::seconds(2)};
    /// Unilateral rule: drop one layer when own window loss exceeds this.
    double unilateral_drop_loss{0.15};
    /// Loss level considered catastrophic (enables emergency_timeout).
    double emergency_loss{0.35};
    /// Unilateral rule: with suggestions silent, data flowing and window loss
    /// below this, probe one layer up (RLM-style join experiment).
    double unilateral_add_loss{0.02};
    /// Minimum spacing between unilateral adds — a failed probe costs several
    /// seconds of congestion, so probes must be far apart.
    sim::Time add_holdoff{sim::Time::seconds(20)};
    bool enable_unilateral{true};
    bool enable_unilateral_add{true};
    sim::Time start{sim::Time::zero()};
  };

  ReceiverAgent(sim::Simulation& simulation, transport::ReceiverEndpoint& endpoint,
                Config config);

  void start();

  [[nodiscard]] std::uint64_t suggestions_applied() const { return suggestions_applied_; }
  /// Unilateral actions taken while the controller was silent.
  [[nodiscard]] std::uint64_t unilateral_actions() const {
    return unilateral_adds_ + unilateral_drops_;
  }
  [[nodiscard]] std::uint64_t unilateral_adds() const { return unilateral_adds_; }
  [[nodiscard]] std::uint64_t unilateral_drops() const { return unilateral_drops_; }

  /// --- Suggestion-gap metrics (fault/recovery observability) --------------

  /// Longest observed silence between suggestions (includes the still-open
  /// gap as of the latest watchdog check).
  [[nodiscard]] sim::Time max_suggestion_gap() const { return max_gap_; }
  /// Cumulative time spent past the silence horizon, in watchdog-check
  /// granularity — "how long was this receiver flying blind".
  [[nodiscard]] sim::Time suggestion_gap_time() const { return gap_time_; }

  /// Silence horizon in force (derived from expected_interval when set).
  [[nodiscard]] sim::Time silence_horizon() const;

  /// One unilateral watchdog decision, as observed at the instant it was
  /// taken. The invariant auditor checks the watchdog sanity rules against
  /// these (e.g. never add-probe while loss is at or above the add
  /// threshold, never drop on a clean un-starved window).
  struct UnilateralAction {
    bool add{false};       ///< true: probed one layer up; false: dropped one
    double loss{0.0};      ///< window loss rate that motivated the action
    bool starved{false};   ///< subscribed but zero packets in the window
    int level_after{0};    ///< subscription level after the action
  };
  using UnilateralHook = std::function<void(const UnilateralAction&)>;
  void set_unilateral_hook(UnilateralHook hook) { unilateral_hook_ = std::move(hook); }

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void check_silence();
  void note_gap(sim::Time now);

  sim::Simulation& simulation_;
  transport::ReceiverEndpoint& endpoint_;
  Config config_;
  sim::Time last_suggestion_{sim::Time::zero()};
  sim::Time last_unilateral_add_{sim::Time::zero()};
  std::uint32_t last_epoch_{0};
  std::uint64_t suggestions_applied_{0};
  std::uint64_t unilateral_adds_{0};
  std::uint64_t unilateral_drops_{0};
  sim::Time max_gap_{sim::Time::zero()};
  sim::Time gap_time_{sim::Time::zero()};
  UnilateralHook unilateral_hook_;
};

}  // namespace tsim::control
