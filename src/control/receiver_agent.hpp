#pragma once

#include <cstdint>

#include "sim/simulation.hpp"
#include "transport/receiver_endpoint.hpp"

namespace tsim::control {

/// Receiver-side policy for TopoSense: obey controller suggestions, and make
/// unilateral decisions only when suggestion packets stop arriving for a long
/// period (the paper's resilience rule for lossy control channels).
class ReceiverAgent {
 public:
  struct Config {
    /// Silence length after which the receiver acts on its own. Suggestions
    /// ride the same queues as data, so during heavy congestion they are the
    /// first thing to die — the receiver must not wait long.
    sim::Time unilateral_timeout{sim::Time::seconds(6)};
    /// Shorter silence horizon used when loss is catastrophic: heavy loss is
    /// itself evidence that the suggestion packets are being lost with it.
    sim::Time emergency_timeout{sim::Time::seconds(3)};
    /// How often the silence check runs.
    sim::Time check_period{sim::Time::seconds(2)};
    /// Unilateral rule: drop one layer when own window loss exceeds this.
    double unilateral_drop_loss{0.15};
    /// Loss level considered catastrophic (enables emergency_timeout).
    double emergency_loss{0.35};
    bool enable_unilateral{true};
    sim::Time start{sim::Time::zero()};
  };

  ReceiverAgent(sim::Simulation& simulation, transport::ReceiverEndpoint& endpoint,
                Config config);

  void start();

  [[nodiscard]] std::uint64_t suggestions_applied() const { return suggestions_applied_; }
  [[nodiscard]] std::uint64_t unilateral_actions() const { return unilateral_actions_; }

 private:
  void check_silence();

  sim::Simulation& simulation_;
  transport::ReceiverEndpoint& endpoint_;
  Config config_;
  sim::Time last_suggestion_{sim::Time::zero()};
  std::uint32_t last_epoch_{0};
  std::uint64_t suggestions_applied_{0};
  std::uint64_t unilateral_actions_{0};
};

}  // namespace tsim::control
