#pragma once

#include <cstdint>

#include "transport/receiver_endpoint.hpp"

namespace tsim::control {

class ReceiverAgent;

/// Aggregate counters every adaptation scheme reports. Fields that a scheme
/// has no notion of stay zero (the receiver-driven baseline has no reports;
/// the TopoSense controller does not count per-receiver joins).
struct ControllerStats {
  std::uint64_t reports_received{0};
  std::uint64_t suggestions_sent{0};
  std::uint64_t intervals_run{0};
  std::uint64_t outages{0};
  std::uint64_t layers_added{0};    ///< receiver-local adds (baseline schemes)
  std::uint64_t layers_dropped{0};  ///< receiver-local drops (baseline schemes)
};

/// The adaptation scheme driving a set of receivers, behind one interface so
/// scenario wiring and the per-domain composition in DomainManager never
/// branch on a controller kind. Implementations: ControllerAgent (the paper's
/// controller, usable standalone), TopoSenseDomain (controller + discovery +
/// watchdogs as one domain unit), baseline::ReceiverDrivenController (RLM
/// family) and NullController (receivers stay at their initial subscription).
///
/// Lifecycle contract (the scenario's finalize order, which fingerprint tests
/// pin): construct -> register_receiver() for every endpoint -> start() when
/// control-plane timers should arm (before traffic starts) ->
/// start_receiver_policies() after the endpoints themselves have started.
class AdaptationController {
 public:
  AdaptationController() = default;
  AdaptationController(const AdaptationController&) = delete;
  AdaptationController& operator=(const AdaptationController&) = delete;
  virtual ~AdaptationController() = default;

  /// Registers a receiver endpoint with the scheme. Returns the per-receiver
  /// watchdog agent when the scheme installs one (TopoSense), nullptr
  /// otherwise — the caller uses it for auditor wiring only; ownership stays
  /// with the scheme.
  virtual ReceiverAgent* register_receiver(transport::ReceiverEndpoint& endpoint) = 0;

  /// Arms the scheme's control-plane timers (controller intervals, topology
  /// discovery). Called once, before sources and endpoints start.
  virtual void start() = 0;

  /// Arms per-receiver policy timers (watchdogs, RLM join-experiment ticks).
  /// Called once, after every endpoint has started.
  virtual void start_receiver_policies() = 0;

  /// Fault hook: a disabled scheme makes no adaptation decisions. Re-enabling
  /// models a process restart.
  virtual void set_enabled(bool enabled) = 0;
  [[nodiscard]] virtual bool enabled() const = 0;

  [[nodiscard]] virtual ControllerStats stats() const = 0;
};

/// The do-nothing scheme: receivers stay at their initial subscription for
/// the whole run (the paper's "no adaptation" reference curves). Keeps the
/// outage counter so fault plans behave uniformly across schemes.
class NullController final : public AdaptationController {
 public:
  ReceiverAgent* register_receiver(transport::ReceiverEndpoint& /*endpoint*/) override {
    return nullptr;
  }
  void start() override {}
  void start_receiver_policies() override {}
  void set_enabled(bool enabled) override {
    if (enabled == enabled_) return;
    enabled_ = enabled;
    if (!enabled_) ++outages_;
  }
  [[nodiscard]] bool enabled() const override { return enabled_; }
  [[nodiscard]] ControllerStats stats() const override {
    ControllerStats s;
    s.outages = outages_;
    return s;
  }

 private:
  bool enabled_{true};
  std::uint64_t outages_{0};
};

}  // namespace tsim::control
