#pragma once

#include <vector>

#include "core/capacity_estimator.hpp"
#include "core/link_interner.hpp"
#include "core/params.hpp"
#include "core/tree_index.hpp"
#include "core/types.hpp"

namespace tsim::core {

/// Per-session scratch computed by the algorithm's passes. Vectors are
/// indexed like the TreeIndex. Instances are reused across intervals (the
/// passes overwrite every slot), so steady-state intervals allocate nothing.
struct LabeledTree {
  TreeIndex tree;
  std::vector<double> loss;                    ///< min-of-children for internals
  std::vector<bool> congested;
  std::vector<std::uint64_t> max_subtree_bytes;  ///< max over receivers below
  std::vector<double> bottleneck_bps;          ///< top-down min link capacity
  std::vector<double> max_handle_bps;          ///< bottom-up max of bottlenecks
  std::vector<double> share_bps;               ///< fair-share bandwidth cap per node
  /// Interned id of the uplink (parent -> node) per node; kNoLinkId for the
  /// root. Valid after assign_link_ids; stable for the topology's lifetime.
  std::vector<std::uint32_t> link_id;

  explicit LabeledTree(TreeIndex t);
};

/// Reusable flat scratch for the per-interval link passes. Owned by the
/// caller (TopoSense keeps one for its whole lifetime) so the per-interval
/// cost is a handful of O(links)/O(nodes) fills instead of hash-map rebuilds.
struct PassWorkspace {
  LinkAggregates aggregates;
  std::vector<double> cap_by_id;          ///< capacity snapshot per link id
  std::vector<std::int32_t> crossing;     ///< sessions crossing each link
  std::vector<double> x_sum;              ///< Σ x over sessions per link
  std::vector<double> headroom;           ///< per-node scratch (one session at a time)
  std::vector<std::vector<double>> x;     ///< per-session per-node max-layer weight
};

/// Stage 1 (§III "Computing Congestion States"): derives internal-node loss
/// (minimum over children), labels nodes CONGESTED/NOT-CONGESTED (including
/// the top-down parent-congested propagation), and records the max bytes
/// received by any receiver in each subtree.
void label_congestion(LabeledTree& lt, const Params& params);

/// Interns every tree edge and records the dense uplink id per node. Called
/// once per topology epoch (tree build), not per interval.
void assign_link_ids(LabeledTree& lt, LinkInterner& links);

/// Builds per-link observations across all sessions for the capacity
/// estimator (requires label_congestion first). Output order is
/// first-encounter order over (session input order × BFS order) — stable
/// across runs and platforms, unlike the seed's hash order.
[[nodiscard]] std::vector<LinkObservation> collect_link_observations(
    const std::vector<LabeledTree>& trees);

/// Dense equivalent for the hot path: reduces all sessions' per-link
/// observations straight into a flat aggregate table indexed by link id
/// (requires assign_link_ids + label_congestion first). `link_count` is the
/// interner's current size.
void collect_link_aggregates(const std::vector<LabeledTree*>& trees, const Params& params,
                             std::size_t link_count, LinkAggregates& out);

/// Stage 3 ("Finding Bottleneck Bandwidths"): propagates the minimum
/// estimated link capacity top-down, then the max child bottleneck bottom-up.
void compute_bottlenecks(LabeledTree& lt, const CapacityEstimator& capacities);

/// Dense overload: capacities come from a per-link-id snapshot
/// (CapacityEstimator::snapshot_capacities) via lt.link_id.
void compute_bottlenecks(LabeledTree& lt, const std::vector<double>& cap_by_id);

/// Stage 4 ("Bandwidth Sharing"): computes, per node, the session's fair
/// bandwidth share along its path. On every shared finite link, session i
/// gets x_i*B/Σx_j where x_i is the max layers it could use were every other
/// session at its base layer. Single-session finite links cap at B; a session
/// never falls below one base layer.
void compute_fair_shares(std::vector<LabeledTree>& trees, const CapacityEstimator& capacities,
                         const Params& params);

/// Dense core used by the hot path: flat per-link tables in `ws`, capacities
/// from `cap_by_id`, link identity via lt.link_id. The legacy overload above
/// delegates here, so there is exactly one implementation of the arithmetic.
void compute_fair_shares(const std::vector<LabeledTree*>& trees,
                         const std::vector<double>& cap_by_id, const Params& params,
                         PassWorkspace& ws);

}  // namespace tsim::core
