#pragma once

#include <vector>

#include "core/capacity_estimator.hpp"
#include "core/params.hpp"
#include "core/tree_index.hpp"
#include "core/types.hpp"

namespace tsim::core {

/// Per-session scratch computed by the algorithm's passes. Vectors are
/// indexed like the TreeIndex.
struct LabeledTree {
  TreeIndex tree;
  std::vector<double> loss;                    ///< min-of-children for internals
  std::vector<bool> congested;
  std::vector<std::uint64_t> max_subtree_bytes;  ///< max over receivers below
  std::vector<double> bottleneck_bps;          ///< top-down min link capacity
  std::vector<double> max_handle_bps;          ///< bottom-up max of bottlenecks
  std::vector<double> share_bps;               ///< fair-share bandwidth cap per node

  explicit LabeledTree(TreeIndex t);
};

/// Stage 1 (§III "Computing Congestion States"): derives internal-node loss
/// (minimum over children), labels nodes CONGESTED/NOT-CONGESTED (including
/// the top-down parent-congested propagation), and records the max bytes
/// received by any receiver in each subtree.
void label_congestion(LabeledTree& lt, const Params& params);

/// Builds per-link observations across all sessions for the capacity
/// estimator (requires label_congestion first).
[[nodiscard]] std::vector<LinkObservation> collect_link_observations(
    const std::vector<LabeledTree>& trees);

/// Stage 3 ("Finding Bottleneck Bandwidths"): propagates the minimum
/// estimated link capacity top-down, then the max child bottleneck bottom-up.
void compute_bottlenecks(LabeledTree& lt, const CapacityEstimator& capacities);

/// Stage 4 ("Bandwidth Sharing"): computes, per node, the session's fair
/// bandwidth share along its path. On every shared finite link, session i
/// gets x_i*B/Σx_j where x_i is the max layers it could use were every other
/// session at its base layer. Single-session finite links cap at B; a session
/// never falls below one base layer.
void compute_fair_shares(std::vector<LabeledTree>& trees, const CapacityEstimator& capacities,
                         const Params& params);

}  // namespace tsim::core
