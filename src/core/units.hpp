#pragma once

#include <compare>
#include <concepts>
#include <cstdint>
#include <limits>

#include "sim/time.hpp"

// Strongly-typed physical quantities for the simulator's public interfaces.
//
// The algorithm's correctness hinges on quantities the compiler could not
// previously tell apart: bandwidths, byte counts, packet counts and loss
// fractions all flowed as raw `double` / `std::uint64_t`, so a swapped
// argument or a bits-vs-bytes slip compiled clean and only surfaced as a
// wrong Table-I decision. These wrappers make such slips type errors:
//
//   - construction from the raw representation is `explicit` (and deleted
//     for lossy cross-type conversions, e.g. Bytes from double);
//   - arithmetic exists only where dimensionally sound (Bytes + Bytes is a
//     Bytes; Bytes + BitsPerSec does not compile);
//   - unit conversions are spelled as operations: Bytes / sim::Time is a
//     BitsPerSec, BitsPerSec * sim::Time is a Bytes.
//
// The wrappers are representationally transparent: each holds exactly the
// raw value the code stored before the migration and every conversion uses
// the exact expression the call sites used, so simulation fingerprints are
// bit-for-bit unchanged. The `raw-units` check of tools/lint/toposense_lint
// enforces that new public-header members and parameters use these types
// instead of raw `double *_bps` / `*_bytes` / `*_fraction` declarations.
namespace tsim::units {

class Bytes;

/// A bandwidth or data rate in bits per second. Holds a double because the
/// paper's capacity estimates are continuous (and +infinity is the estimator's
/// "unknown" value).
class BitsPerSec {
 public:
  constexpr BitsPerSec() = default;
  explicit constexpr BitsPerSec(double bps) : bps_{bps} {}

  [[nodiscard]] constexpr double bps() const { return bps_; }

  [[nodiscard]] static constexpr BitsPerSec zero() { return BitsPerSec{0.0}; }
  [[nodiscard]] static constexpr BitsPerSec infinite() {
    return BitsPerSec{std::numeric_limits<double>::infinity()};
  }
  [[nodiscard]] constexpr bool finite() const {
    return bps_ != std::numeric_limits<double>::infinity();
  }

  constexpr auto operator<=>(const BitsPerSec&) const = default;

  constexpr BitsPerSec& operator+=(BitsPerSec rhs) {
    bps_ += rhs.bps_;
    return *this;
  }
  [[nodiscard]] friend constexpr BitsPerSec operator+(BitsPerSec a, BitsPerSec b) {
    return BitsPerSec{a.bps_ + b.bps_};
  }
  [[nodiscard]] friend constexpr BitsPerSec operator-(BitsPerSec a, BitsPerSec b) {
    return BitsPerSec{a.bps_ - b.bps_};
  }
  /// Scaling by a dimensionless factor (layer growth, halving, inflation).
  [[nodiscard]] friend constexpr BitsPerSec operator*(BitsPerSec a, double k) {
    return BitsPerSec{a.bps_ * k};
  }
  [[nodiscard]] friend constexpr BitsPerSec operator*(double k, BitsPerSec a) {
    return BitsPerSec{k * a.bps_};
  }
  [[nodiscard]] friend constexpr BitsPerSec operator/(BitsPerSec a, double k) {
    return BitsPerSec{a.bps_ / k};
  }
  /// Ratio of two rates is dimensionless.
  [[nodiscard]] friend constexpr double operator/(BitsPerSec a, BitsPerSec b) {
    return a.bps_ / b.bps_;
  }

 private:
  double bps_{0.0};
};

/// An exact byte count (payload sizes, per-window byte totals, link counters).
class Bytes {
 public:
  constexpr Bytes() = default;
  template <std::integral T>
  explicit constexpr Bytes(T count) : count_{static_cast<std::uint64_t>(count)} {}
  /// Byte counts are exact; constructing one from a floating value would hide
  /// a lossy conversion. Convert explicitly at the call site instead.
  template <std::floating_point T>
  explicit Bytes(T) = delete;

  [[nodiscard]] constexpr std::uint64_t count() const { return count_; }
  [[nodiscard]] static constexpr Bytes zero() { return Bytes{0}; }

  /// This many bytes as a (floating) number of bits — the exact expression
  /// `static_cast<double>(bytes) * 8.0` the raw code used, so rate arithmetic
  /// built on it is bit-identical.
  [[nodiscard]] constexpr double bits() const { return static_cast<double>(count_) * 8.0; }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes rhs) {
    count_ += rhs.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes rhs) {
    count_ -= rhs.count_;
    return *this;
  }
  [[nodiscard]] friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.count_ + b.count_};
  }
  [[nodiscard]] friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes{a.count_ - b.count_};
  }

  /// Average rate of this many bytes over a window: Bytes / Time -> BitsPerSec.
  [[nodiscard]] friend constexpr BitsPerSec operator/(Bytes b, sim::Time window) {
    return BitsPerSec{b.bits() / window.as_seconds()};
  }

 private:
  std::uint64_t count_{0};
};

/// Volume transferred at a rate over a duration: BitsPerSec * Time -> Bytes.
/// Truncates to whole bytes, as the raw `static_cast<std::uint64_t>` did.
[[nodiscard]] constexpr Bytes operator*(BitsPerSec rate, sim::Time duration) {
  return Bytes{static_cast<std::uint64_t>(rate.bps() * duration.as_seconds() / 8.0)};
}
[[nodiscard]] constexpr Bytes operator*(sim::Time duration, BitsPerSec rate) {
  return rate * duration;
}

/// An exact packet count (received/lost/expected tallies).
class PacketCount {
 public:
  constexpr PacketCount() = default;
  template <std::integral T>
  explicit constexpr PacketCount(T count) : count_{static_cast<std::uint64_t>(count)} {}
  template <std::floating_point T>
  explicit PacketCount(T) = delete;

  [[nodiscard]] constexpr std::uint64_t count() const { return count_; }
  [[nodiscard]] static constexpr PacketCount zero() { return PacketCount{0}; }

  constexpr auto operator<=>(const PacketCount&) const = default;

  constexpr PacketCount& operator++() {
    ++count_;
    return *this;
  }
  constexpr PacketCount& operator+=(PacketCount rhs) {
    count_ += rhs.count_;
    return *this;
  }
  constexpr PacketCount& operator-=(PacketCount rhs) {
    count_ -= rhs.count_;
    return *this;
  }
  [[nodiscard]] friend constexpr PacketCount operator+(PacketCount a, PacketCount b) {
    return PacketCount{a.count_ + b.count_};
  }
  [[nodiscard]] friend constexpr PacketCount operator-(PacketCount a, PacketCount b) {
    return PacketCount{a.count_ - b.count_};
  }

 private:
  std::uint64_t count_{0};
};

/// A loss fraction in [0, 1] (the paper's p). Plain comparisons exist (they
/// are dimensionless thresholds); additive arithmetic does not — summing loss
/// fractions across windows is almost always a bug (weight by packets first).
class LossFraction {
 public:
  constexpr LossFraction() = default;
  explicit constexpr LossFraction(double value) : value_{value} {}

  [[nodiscard]] constexpr double value() const { return value_; }
  [[nodiscard]] static constexpr LossFraction zero() { return LossFraction{0.0}; }

  /// lost / (received + lost), 0 when nothing was expected — the one formula
  /// every report producer used, kept in one place.
  [[nodiscard]] static constexpr LossFraction from_counts(PacketCount lost,
                                                          PacketCount expected) {
    return expected.count() == 0
               ? LossFraction{0.0}
               : LossFraction{static_cast<double>(lost.count()) /
                              static_cast<double>(expected.count())};
  }

  constexpr auto operator<=>(const LossFraction&) const = default;

 private:
  double value_{0.0};
};

}  // namespace tsim::units
