// Clang thread-safety analysis attributes, compiled away on other toolchains.
//
// The simulator's concurrency contract is narrow by design — a Simulation is
// single-threaded, and the only cross-thread surfaces are sim::ShardExecutor's
// worker pool and the handoff channels it drains (docs/sharding.md). These
// macros let Clang's `-Wthread-safety` analysis prove, at compile time, that
// every access to that shared state holds the right lock; CI builds with
// `-Werror=thread-safety-analysis` so a violation is a build break, not a
// TSan report three jobs later.
//
// Use core::Mutex / core::LockGuard / core::UniqueLock (core/mutex.hpp)
// instead of annotating raw std::mutex members — the wrapper carries the
// capability attributes once, so call sites stay plain C++.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define TS_ATTRIBUTE(x) __attribute__((x))
#else
#define TS_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex" names the capability kind
/// in diagnostics).
#define TS_CAPABILITY(x) TS_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (std::lock_guard-shaped types).
#define TS_SCOPED_CAPABILITY TS_ATTRIBUTE(scoped_lockable)

/// Declares that a member is protected by the given capability: reads require
/// the capability shared, writes require it exclusively.
#define TS_GUARDED_BY(x) TS_ATTRIBUTE(guarded_by(x))

/// Like TS_GUARDED_BY for the data *pointed to* by a pointer member.
#define TS_PT_GUARDED_BY(x) TS_ATTRIBUTE(pt_guarded_by(x))

/// The function may only be called while holding the capability exclusively.
#define TS_REQUIRES(...) TS_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// The function may only be called while holding the capability shared.
#define TS_REQUIRES_SHARED(...) TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define TS_ACQUIRE(...) TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The function releases the capability (which must be held on entry).
#define TS_RELEASE(...) TS_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The function may only be called while *not* holding the capability
/// (deadlock guard for self-locking public entry points).
#define TS_EXCLUDES(...) TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define TS_RETURN_CAPABILITY(x) TS_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function's locking discipline is intentionally outside
/// what the analysis can model. Every use must carry a justification comment.
#define TS_NO_THREAD_SAFETY_ANALYSIS TS_ATTRIBUTE(no_thread_safety_analysis)
