#include "core/tree_index.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace tsim::core {

TreeIndex::TreeIndex(const SessionInput& input) : session_{input.session} {
  // Map original positions, find the root, then BFS to keep only the
  // connected component below the source and to fix a deterministic order.
  std::unordered_map<net::NodeId, std::size_t> pos;
  pos.reserve(input.nodes.size());
  for (std::size_t i = 0; i < input.nodes.size(); ++i) {
    if (!pos.emplace(input.nodes[i].node, i).second) {
      throw std::invalid_argument("TreeIndex: duplicate node id in session input");
    }
  }
  const auto root_it = pos.find(input.source);
  if (root_it == pos.end()) {
    throw std::invalid_argument("TreeIndex: source node missing from session input");
  }

  // children-by-original-position
  std::unordered_map<net::NodeId, std::vector<std::size_t>> kids;
  for (std::size_t i = 0; i < input.nodes.size(); ++i) {
    const SessionNodeInput& n = input.nodes[i];
    if (n.node == input.source) continue;
    kids[n.parent].push_back(i);
  }
  // Each value vector is sorted independently; map iteration order is moot.
  for (auto& [id, v] : kids) {  // NOLINT-determinism(per-key sort, order-free)
    std::sort(v.begin(), v.end(), [&](std::size_t a, std::size_t b) {
      return input.nodes[a].node < input.nodes[b].node;
    });
  }

  std::deque<std::size_t> queue{root_it->second};
  std::vector<std::size_t> order;
  while (!queue.empty()) {
    const std::size_t i = queue.front();
    queue.pop_front();
    if (order.size() > input.nodes.size()) {
      throw std::invalid_argument("TreeIndex: cycle in session input");
    }
    order.push_back(i);
    const auto it = kids.find(input.nodes[i].node);
    if (it != kids.end()) {
      for (const std::size_t c : it->second) queue.push_back(c);
    }
  }

  nodes_.reserve(order.size());
  parents_.reserve(order.size());
  children_.resize(order.size());
  bfs_.reserve(order.size());
  input_map_.assign(input.nodes.size(), -1);
  std::unordered_map<net::NodeId, std::int32_t> new_index;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const SessionNodeInput& n = input.nodes[order[rank]];
    nodes_.push_back(n);
    new_index[n.node] = static_cast<std::int32_t>(rank);
    bfs_.push_back(static_cast<std::int32_t>(rank));
    input_map_[order[rank]] = static_cast<std::int32_t>(rank);
  }
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const SessionNodeInput& n = nodes_[rank];
    if (n.node == input.source) {
      parents_.push_back(-1);
      continue;
    }
    const auto pit = new_index.find(n.parent);
    if (pit == new_index.end()) {
      throw std::invalid_argument("TreeIndex: node parent not in tree");
    }
    parents_.push_back(pit->second);
    children_[pit->second].push_back(static_cast<std::int32_t>(rank));
  }
  by_id_ = std::move(new_index);
}

int TreeIndex::index_of(net::NodeId node) const {
  const auto it = by_id_.find(node);
  return it == by_id_.end() ? -1 : it->second;
}

std::uint64_t TreeIndex::structure_signature(const SessionInput& input) {
  // FNV-1a over the structural fields, in input order.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(input.session);
  mix(input.source);
  mix(input.nodes.size());
  for (const SessionNodeInput& n : input.nodes) {
    mix(n.node);
    mix(n.parent);
    mix(n.is_receiver ? 1 : 0);
  }
  return h;
}

void TreeIndex::refresh_measurements(const SessionInput& input) {
  for (std::size_t k = 0; k < input.nodes.size(); ++k) {
    const std::int32_t idx = input_map_[k];
    if (idx < 0) continue;  // node was unreachable from the source
    SessionNodeInput& n = nodes_[static_cast<std::size_t>(idx)];
    const SessionNodeInput& src = input.nodes[k];
    n.loss_rate = src.loss_rate;
    n.bytes_received = src.bytes_received;
    n.subscription = src.subscription;
  }
}

}  // namespace tsim::core
