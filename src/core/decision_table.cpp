#include "core/decision_table.hpp"

#include <cassert>

namespace tsim::core {

LeafDecision leaf_decision(CongestionHistory history, BwEquality equality) {
  assert(history <= kHistoryMask);
  switch (equality) {
    case BwEquality::kLesser:
      switch (history) {
        case 0: return {LeafAction::kAddLayer, false};
        case 1: return {LeafAction::kDropIfHighLoss, true};
        case 2:
        case 4:
        case 5:
        case 6: return {LeafAction::kMaintain, false};
        case 3: return {LeafAction::kReduceToPrevSupply, false};
        case 7: return {LeafAction::kHalvePrevSupply, true};
        default: break;
      }
      break;
    case BwEquality::kEqual:
      switch (history) {
        case 0:
        case 4: return {LeafAction::kAddLayer, false};
        case 1:
        case 2:
        case 5:
        case 6: return {LeafAction::kMaintain, false};
        case 3:
        case 7: return {LeafAction::kHalvePrevSupply, true};
        default: break;
      }
      break;
    case BwEquality::kGreater:
      switch (history) {
        case 0: return {LeafAction::kAddLayer, false};
        case 1:
        case 2:
        case 4:
        case 5:
        case 6: return {LeafAction::kMaintain, false};
        case 3:
        case 7: return {LeafAction::kHalveIfVeryHighLoss, false};
        default: break;
      }
      break;
  }
  return {LeafAction::kMaintain, false};  // unreachable for valid inputs
}

InternalAction internal_decision(CongestionHistory history, BwEquality equality) {
  assert(history <= kHistoryMask);
  switch (history) {
    case 0:
    case 4:
      return InternalAction::kAcceptChildren;
    case 1:
    case 5:
    case 7:
      return equality == BwEquality::kGreater ? InternalAction::kHalveCurrentSupply
                                              : InternalAction::kHalvePrevSupply;
    case 2:
    case 3:
    case 6:
      return InternalAction::kMaintain;
    default:
      return InternalAction::kMaintain;  // unreachable for valid inputs
  }
}

std::string_view to_string(LeafAction a) {
  switch (a) {
    case LeafAction::kAddLayer: return "AddLayer";
    case LeafAction::kDropIfHighLoss: return "DropIfHighLoss";
    case LeafAction::kMaintain: return "Maintain";
    case LeafAction::kReduceToPrevSupply: return "ReduceToPrevSupply";
    case LeafAction::kHalvePrevSupply: return "HalvePrevSupply";
    case LeafAction::kHalveIfVeryHighLoss: return "HalveIfVeryHighLoss";
  }
  return "?";
}

std::string_view to_string(InternalAction a) {
  switch (a) {
    case InternalAction::kAcceptChildren: return "AcceptChildren";
    case InternalAction::kMaintain: return "Maintain";
    case InternalAction::kHalveCurrentSupply: return "HalveCurrentSupply";
    case InternalAction::kHalvePrevSupply: return "HalvePrevSupply";
  }
  return "?";
}

std::string_view to_string(BwEquality e) {
  switch (e) {
    case BwEquality::kLesser: return "Lesser";
    case BwEquality::kEqual: return "Equal";
    case BwEquality::kGreater: return "Greater";
  }
  return "?";
}

}  // namespace tsim::core
