#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace tsim::core {

/// Sentinel link id for tree roots (which have no uplink).
inline constexpr std::uint32_t kNoLinkId = static_cast<std::uint32_t>(-1);

/// Interns LinkKeys to dense uint32 ids. Ids are assigned in first-encounter
/// order, which is deterministic (session inputs arrive in a fixed order and
/// trees are walked in BFS order), so "iterate links by id" is a reproducible
/// iteration order — unlike the seed's unordered_map hash order. The table
/// only grows on topology change (a new link appearing), never per interval;
/// per-interval link state lives in flat vectors indexed by these ids.
class LinkInterner {
 public:
  /// Returns the id for `key`, assigning the next dense id on first sight.
  std::uint32_t intern(LinkKey key) {
    const auto [it, inserted] = ids_.try_emplace(key, static_cast<std::uint32_t>(keys_.size()));
    if (inserted) keys_.push_back(key);
    return it->second;
  }

  /// Id for `key`, or kNoLinkId when never interned.
  [[nodiscard]] std::uint32_t find(LinkKey key) const {
    const auto it = ids_.find(key);
    return it == ids_.end() ? kNoLinkId : it->second;
  }

  [[nodiscard]] LinkKey key(std::uint32_t id) const { return keys_[id]; }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  void clear() {
    ids_.clear();
    keys_.clear();
  }

 private:
  std::unordered_map<LinkKey, std::uint32_t> ids_;
  std::vector<LinkKey> keys_;
};

}  // namespace tsim::core
