#include "core/passes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace tsim::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

LabeledTree::LabeledTree(TreeIndex t)
    : tree{std::move(t)},
      loss(tree.size(), 0.0),
      congested(tree.size(), false),
      max_subtree_bytes(tree.size(), 0),
      bottleneck_bps(tree.size(), kInf),
      max_handle_bps(tree.size(), kInf),
      share_bps(tree.size(), kInf),
      link_id(tree.size(), kNoLinkId) {}

void label_congestion(LabeledTree& lt, const Params& params) {
  const TreeIndex& tree = lt.tree;
  const auto& order = tree.bfs_order();

  // Bottom-up: loss = own (receivers) or min over children; subtree max bytes.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t i = static_cast<std::size_t>(*it);
    const SessionNodeInput& n = tree.node(i);
    if (tree.is_leaf(i)) {
      lt.loss[i] = n.is_receiver ? n.loss_rate.value() : 0.0;
      lt.max_subtree_bytes[i] = n.is_receiver ? n.bytes_received.count() : 0;
      lt.congested[i] = n.is_receiver && n.loss_rate.value() > params.p_threshold;
      continue;
    }
    double min_loss = kInf;
    double sum_loss = 0.0;
    std::uint64_t max_bytes = n.is_receiver ? n.bytes_received.count() : 0;
    std::size_t child_count = 0;
    std::size_t above_threshold = 0;
    for (const auto c : tree.children(i)) {
      const std::size_t ci = static_cast<std::size_t>(c);
      min_loss = std::min(min_loss, lt.loss[ci]);
      sum_loss += lt.loss[ci];
      max_bytes = std::max(max_bytes, lt.max_subtree_bytes[ci]);
      ++child_count;
      if (lt.loss[ci] > params.p_threshold) ++above_threshold;
    }
    // A receiver can be co-located with an internal node; fold its own loss
    // in as one more "child" observation.
    if (n.is_receiver) {
      min_loss = std::min(min_loss, n.loss_rate.value());
      sum_loss += n.loss_rate.value();
      ++child_count;
      if (n.loss_rate.value() > params.p_threshold) ++above_threshold;
    }
    lt.loss[i] = min_loss;
    lt.max_subtree_bytes[i] = max_bytes;

    // Congested iff all children lose above the threshold AND enough of them
    // sit close to the mean (negligible deviation across the subtree).
    bool self_congested = false;
    if (child_count > 0 && above_threshold == child_count) {
      const double mean = sum_loss / static_cast<double>(child_count);
      const double band = std::max(params.similar_band, params.similar_rel * mean);
      std::size_t similar =
          n.is_receiver && std::abs(n.loss_rate.value() - mean) <= band ? 1 : 0;
      for (const auto c : tree.children(i)) {
        if (std::abs(lt.loss[static_cast<std::size_t>(c)] - mean) <= band) {
          ++similar;
        }
      }
      self_congested =
          static_cast<double>(similar) >= params.eta_similar * static_cast<double>(child_count);
    }
    lt.congested[i] = self_congested;
  }

  // Top-down: a node is also congested when its parent is.
  for (const auto idx : order) {
    const std::size_t i = static_cast<std::size_t>(idx);
    const int p = lt.tree.parent(i);
    if (p >= 0 && lt.congested[static_cast<std::size_t>(p)]) lt.congested[i] = true;
  }
}

void assign_link_ids(LabeledTree& lt, LinkInterner& links) {
  const TreeIndex& tree = lt.tree;
  lt.link_id.assign(tree.size(), kNoLinkId);
  for (const auto idx : tree.bfs_order()) {
    const std::size_t i = static_cast<std::size_t>(idx);
    const int p = tree.parent(i);
    if (p < 0) continue;
    lt.link_id[i] =
        links.intern(LinkKey{tree.node(static_cast<std::size_t>(p)).node, tree.node(i).node});
  }
}

std::vector<LinkObservation> collect_link_observations(const std::vector<LabeledTree>& trees) {
  // First-encounter order (deterministic), with a side index for lookups.
  std::vector<LinkObservation> result;
  std::unordered_map<LinkKey, std::size_t> index;
  for (const LabeledTree& lt : trees) {
    const TreeIndex& tree = lt.tree;
    for (const auto idx : tree.bfs_order()) {
      const std::size_t i = static_cast<std::size_t>(idx);
      const int p = tree.parent(i);
      if (p < 0) continue;
      const LinkKey key{tree.node(static_cast<std::size_t>(p)).node, tree.node(i).node};
      const auto [it, inserted] = index.try_emplace(key, result.size());
      if (inserted) result.push_back(LinkObservation{key, {}});
      result[it->second].sessions.push_back(
          LinkSessionObservation{tree.session(), lt.loss[i], lt.max_subtree_bytes[i]});
    }
  }
  return result;
}

void collect_link_aggregates(const std::vector<LabeledTree*>& trees, const Params& params,
                             std::size_t link_count, LinkAggregates& out) {
  out.reset(link_count);
  for (const LabeledTree* lt : trees) {
    const TreeIndex& tree = lt->tree;
    for (const auto idx : tree.bfs_order()) {
      const std::size_t i = static_cast<std::size_t>(idx);
      const std::uint32_t id = lt->link_id[i];
      if (id == kNoLinkId) continue;
      LinkAggregate& a = out.row(id);
      ++a.sessions;
      a.all_above_threshold = a.all_above_threshold && lt->loss[i] > params.p_threshold;
      a.weighted_loss += lt->loss[i] * static_cast<double>(lt->max_subtree_bytes[i]);
      a.total_bytes += static_cast<double>(lt->max_subtree_bytes[i]);
    }
  }
}

void compute_bottlenecks(LabeledTree& lt, const std::vector<double>& cap_by_id) {
  const TreeIndex& tree = lt.tree;
  const auto& order = tree.bfs_order();

  // Top-down min of estimated link capacities along the path from the source.
  for (const auto idx : order) {
    const std::size_t i = static_cast<std::size_t>(idx);
    const int p = tree.parent(i);
    if (p < 0) {
      lt.bottleneck_bps[i] = kInf;
      continue;
    }
    const std::uint32_t id = lt.link_id[i];
    const double cap = id < cap_by_id.size() ? cap_by_id[id] : kInf;
    lt.bottleneck_bps[i] = std::min(lt.bottleneck_bps[static_cast<std::size_t>(p)], cap);
  }

  // Bottom-up: the max bandwidth a node can handle is the max bottleneck of
  // its children (a receiver node handles its own bottleneck).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t i = static_cast<std::size_t>(it[0]);
    if (tree.is_leaf(i)) {
      lt.max_handle_bps[i] = lt.bottleneck_bps[i];
      continue;
    }
    double best = tree.node(i).is_receiver ? lt.bottleneck_bps[i] : 0.0;
    for (const auto c : tree.children(i)) {
      best = std::max(best, lt.max_handle_bps[static_cast<std::size_t>(c)]);
    }
    lt.max_handle_bps[i] = best;
  }
}

void compute_bottlenecks(LabeledTree& lt, const CapacityEstimator& capacities) {
  // Resolve capacities through the estimator's interner, then run the dense
  // pass. Trees on the hot path already carry matching link ids; trees built
  // by tests may not, so ids are resolved (without interning) per call.
  const TreeIndex& tree = lt.tree;
  for (const auto idx : tree.bfs_order()) {
    const std::size_t i = static_cast<std::size_t>(idx);
    const int p = tree.parent(i);
    lt.link_id[i] = p < 0 ? kNoLinkId
                          : capacities.links().find(LinkKey{
                                tree.node(static_cast<std::size_t>(p)).node, tree.node(i).node});
  }
  std::vector<double> cap_by_id;
  capacities.snapshot_capacities(cap_by_id);
  compute_bottlenecks(lt, cap_by_id);
}

void compute_fair_shares(const std::vector<LabeledTree*>& trees,
                         const std::vector<double>& cap_by_id, const Params& params,
                         PassWorkspace& ws) {
  const std::size_t link_count = cap_by_id.size();

  // How many sessions cross each link (for the all-others-at-base headroom).
  ws.crossing.assign(link_count, 0);
  for (const LabeledTree* lt : trees) {
    for (const std::uint32_t id : lt->link_id) {
      if (id != kNoLinkId) ++ws.crossing[id];
    }
  }

  const double base = params.layers.base_rate.bps();

  // Per session: top-down headroom if all other sessions sat at base layer,
  // then x at each leaf, then bottom-up max -> x_i per node (and so per link,
  // via the link's child endpoint).
  if (ws.x.size() < trees.size()) ws.x.resize(trees.size());
  for (std::size_t s = 0; s < trees.size(); ++s) {
    const LabeledTree& lt = *trees[s];
    const TreeIndex& tree = lt.tree;
    ws.headroom.assign(tree.size(), kInf);
    for (const auto idx : tree.bfs_order()) {
      const std::size_t i = static_cast<std::size_t>(idx);
      const int p = tree.parent(i);
      if (p < 0) continue;
      const std::uint32_t id = lt.link_id[i];
      const double cap = id < link_count ? cap_by_id[id] : kInf;
      double avail = kInf;
      if (cap != kInf) {
        avail = cap - base * static_cast<double>(ws.crossing[id] - 1);
        avail = std::max(avail, base);  // never below one base layer
      }
      ws.headroom[i] = std::min(ws.headroom[static_cast<std::size_t>(p)], avail);
    }
    ws.x[s].assign(tree.size(), 0.0);
    const auto& order = tree.bfs_order();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::size_t i = static_cast<std::size_t>(*it);
      double xi = 0.0;
      if (tree.node(i).is_receiver) {
        xi = ws.headroom[i] == kInf
                 ? static_cast<double>(params.layers.num_layers)
                 : static_cast<double>(
                       params.layers.max_layers_for_bandwidth(units::BitsPerSec{ws.headroom[i]}));
      }
      for (const auto c : tree.children(i)) {
        xi = std::max(xi, ws.x[s][static_cast<std::size_t>(c)]);
      }
      ws.x[s][i] = std::max(xi, 1.0);
    }
  }

  // Sum of x over sessions per link.
  ws.x_sum.assign(link_count, 0.0);
  for (std::size_t s = 0; s < trees.size(); ++s) {
    const LabeledTree& lt = *trees[s];
    for (const auto idx : lt.tree.bfs_order()) {
      const std::size_t i = static_cast<std::size_t>(idx);
      const std::uint32_t id = lt.link_id[i];
      if (id != kNoLinkId) ws.x_sum[id] += ws.x[s][i];
    }
  }

  // Per node: min over the path of the per-link share.
  for (std::size_t s = 0; s < trees.size(); ++s) {
    LabeledTree& lt = *trees[s];
    const TreeIndex& tree = lt.tree;
    for (const auto idx : tree.bfs_order()) {
      const std::size_t i = static_cast<std::size_t>(idx);
      const int p = tree.parent(i);
      if (p < 0) {
        lt.share_bps[i] = kInf;
        continue;
      }
      const std::uint32_t id = lt.link_id[i];
      const double cap = id < link_count ? cap_by_id[id] : kInf;
      double share = kInf;
      if (cap != kInf) {
        if (ws.crossing[id] > 1) {
          share = ws.x[s][i] * cap / ws.x_sum[id];
        } else {
          share = cap;
        }
        share = std::max(share, base);  // every session keeps its base layer
      }
      lt.share_bps[i] = std::min(lt.share_bps[static_cast<std::size_t>(p)], share);
    }
  }
}

void compute_fair_shares(std::vector<LabeledTree>& trees, const CapacityEstimator& capacities,
                         const Params& params) {
  // Assign link ids from a local interner (the estimator's interner may not
  // cover edges of hand-built test trees, and it is const here), snapshot
  // capacities per id, and delegate to the dense core.
  LinkInterner links;
  std::vector<LabeledTree*> ptrs;
  ptrs.reserve(trees.size());
  for (LabeledTree& lt : trees) {
    assign_link_ids(lt, links);
    ptrs.push_back(&lt);
  }
  std::vector<double> cap_by_id(links.size());
  for (std::uint32_t id = 0; id < links.size(); ++id) {
    cap_by_id[id] = capacities.capacity_bps(links.key(id));
  }
  PassWorkspace ws;
  compute_fair_shares(ptrs, cap_by_id, params, ws);
}

}  // namespace tsim::core
