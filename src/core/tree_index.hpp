#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace tsim::core {

/// Indexed form of one SessionInput tree: children lists and a BFS order so
/// the algorithm's top-down and bottom-up passes are simple array sweeps.
/// Index 0 is always the source/root.
class TreeIndex {
 public:
  /// Builds the index. Nodes unreachable from the source (stale snapshot
  /// artifacts) are dropped. Throws std::invalid_argument on cycles or a
  /// missing source.
  explicit TreeIndex(const SessionInput& input);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const SessionNodeInput& node(std::size_t i) const { return nodes_[i]; }
  [[nodiscard]] int parent(std::size_t i) const { return parents_[i]; }  ///< -1 for root
  [[nodiscard]] const std::vector<std::int32_t>& children(std::size_t i) const {
    return children_[i];
  }
  [[nodiscard]] bool is_leaf(std::size_t i) const { return children_[i].empty(); }

  /// Indices in BFS order from the root (root first).
  [[nodiscard]] const std::vector<std::int32_t>& bfs_order() const { return bfs_; }

  /// Index of a NodeId (-1 when absent).
  [[nodiscard]] int index_of(net::NodeId node) const;

  [[nodiscard]] net::SessionId session() const { return session_; }

  /// Hash over everything that shapes the index: session, source, and each
  /// node's (id, parent, is_receiver) in input order. Two inputs with equal
  /// signatures index identically, so a cached TreeIndex can be reused across
  /// intervals (a "topology epoch") with only the measurements refreshed.
  [[nodiscard]] static std::uint64_t structure_signature(const SessionInput& input);

  /// Overwrites the per-node measurements (loss, bytes, subscription) from a
  /// new interval's input with the same structure_signature as the one this
  /// index was built from. O(n), no hashing, no allocation.
  void refresh_measurements(const SessionInput& input);

 private:
  net::SessionId session_{0};
  std::vector<SessionNodeInput> nodes_;
  std::vector<std::int32_t> parents_;
  std::vector<std::vector<std::int32_t>> children_;
  std::vector<std::int32_t> bfs_;
  std::vector<std::int32_t> input_map_;  ///< input position -> index (-1 if dropped)
  std::unordered_map<net::NodeId, std::int32_t> by_id_;
};

}  // namespace tsim::core
