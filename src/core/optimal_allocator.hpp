#pragma once

#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "traffic/layer_spec.hpp"

namespace tsim::core {

/// Offline reference allocator: given session trees and *known* link
/// capacities, computes a feasible per-receiver layer allocation that is
/// greedily lexicographic max-min (repeatedly raise the worst-off receiver
/// while feasible).
///
/// Context (paper §VI): Sarkar & Tassiulas showed max-min fairness may not
/// exist for discrete layers and that the lexicographically optimal
/// allocation is NP-hard for multiple sessions; this greedy raise-the-minimum
/// procedure is the standard polynomial heuristic and is exact for a single
/// session on a tree. TopoSense itself never sees link capacities — this
/// allocator provides the "optimal subscription" yardstick (the paper's y_i)
/// for topologies where the optimum is not obvious by construction.
class OptimalAllocator {
 public:
  OptimalAllocator(traffic::LayerSpec layers,
                   std::unordered_map<LinkKey, units::BitsPerSec> capacities);

  /// Computes the allocation for the given session trees. Receivers start at
  /// level 0; any receiver that cannot even hold the base layer stays at 0.
  [[nodiscard]] std::vector<Prescription> allocate(
      const std::vector<SessionInput>& sessions) const;

  /// True when `levels` (parallel to the receivers in `sessions`, in
  /// discovery order) fits every link capacity.
  [[nodiscard]] bool feasible(const std::vector<SessionInput>& sessions,
                              const std::vector<int>& levels) const;

  /// Aggregate rate the allocation would place on `link`.
  [[nodiscard]] units::BitsPerSec link_usage(const std::vector<SessionInput>& sessions,
                                             const std::vector<int>& levels, LinkKey link) const;

 private:
  struct ReceiverRef {
    std::size_t session_index;
    std::size_t node_index;  ///< into SessionInput::nodes
  };
  [[nodiscard]] std::vector<ReceiverRef> receivers_of(
      const std::vector<SessionInput>& sessions) const;

  traffic::LayerSpec layers_;
  std::unordered_map<LinkKey, units::BitsPerSec> capacities_;
};

}  // namespace tsim::core
