#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/capacity_estimator.hpp"
#include "core/decision_table.hpp"
#include "core/params.hpp"
#include "core/passes.hpp"
#include "core/types.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace tsim::core {

/// The TopoSense algorithm (paper §III), as a pure library: feed it one
/// AlgorithmInput per interval and it returns subscription prescriptions.
/// All cross-interval state (congestion histories, byte histories, link
/// capacity estimates, per-layer backoff timers) lives inside.
///
/// The class has no knowledge of the simulator; the controller agent adapts
/// simulator state into AlgorithmInput. This keeps the algorithm unit-testable
/// against hand-built trees.
class TopoSense {
 public:
  TopoSense(Params params, sim::Rng rng);

  /// Runs one interval of the algorithm at time `now`.
  AlgorithmOutput run_interval(const AlgorithmInput& input, sim::Time now);

  [[nodiscard]] const Params& params() const { return params_; }
  [[nodiscard]] const CapacityEstimator& capacities() const { return capacities_; }

  /// True when (session, node) may not re-add `layer` yet.
  [[nodiscard]] bool backing_off(net::SessionId session, net::NodeId node, int layer,
                                 sim::Time now) const;

 private:
  struct NodeMemory {
    CongestionHistory hist{0};
    units::Bytes bytes_prev{};  ///< bytes in T0–T1 (older completed interval)
    units::Bytes bytes_cur{};   ///< bytes in T1–T2 (latest completed interval)
    int last_demand{1};
    /// Demand held when the current congestion episode started; backoffs are
    /// pinned to this layer (the probe that caused the episode), so the
    /// cascade of halvings inside one episode cannot lock out the lower,
    /// known-good layers for a whole backoff period.
    int episode_top{0};
    /// Highest level this node recently sustained without congestion.
    /// Layers at or below it are proven safe: they are never backed off, and
    /// re-adding them bypasses backoff — a session knocked down by *another*
    /// session's failed probe climbs straight back. Decays slowly so a real
    /// capacity drop is eventually accepted.
    int stable_level{0};
    int clean_run{0};   ///< consecutive non-congested intervals at last_level
    int last_level{0};  ///< level observed in the previous interval
    int stable_age{0};  ///< intervals since stable_level was (re)confirmed
    std::uint64_t last_add_interval{0};  ///< when this node last grew demand
    std::uint64_t last_seen_interval{0};
  };

  static std::uint64_t memory_key(net::SessionId session, net::NodeId node) {
    return (static_cast<std::uint64_t>(session) << 32) | node;
  }

  [[nodiscard]] BwEquality classify_equality(units::Bytes prev, units::Bytes cur) const;
  [[nodiscard]] int layers_for_bw(units::BitsPerSec bw) const;
  void set_backoff(net::SessionId session, net::NodeId node, int layer, sim::Time now);
  /// set_backoff guarded by the node's proven-stable level.
  void maybe_backoff(net::SessionId session, net::NodeId node, int layer, int stable_level,
                     sim::Time now);
  [[nodiscard]] bool backoff_on_path(const TreeIndex& tree, std::size_t node_index, int layer,
                                     sim::Time now) const;

  /// Bottom-up demand computation over a labeled tree (Table I). `slots`
  /// maps node index -> this node's cross-interval memory (see CachedTree).
  void compute_demands(LabeledTree& lt, const std::vector<NodeMemory*>& slots,
                       std::vector<int>& demand, sim::Time now, double window_s);

  /// Top-down supply allocation under fair share + bottleneck caps.
  void allocate_supply(const LabeledTree& lt, const std::vector<int>& demand,
                       std::vector<int>& supply) const;

  /// One session's labeled tree, cached across intervals. The TreeIndex (and
  /// the interned link ids) are rebuilt only when the session's structure
  /// signature changes — a topology epoch — so steady-state intervals touch
  /// no hash tables and allocate nothing on the pass hot path.
  struct CachedTree {
    std::uint64_t signature{0};
    std::uint64_t last_seen_interval{0};
    LabeledTree lt;
    /// memory_ entry per node index, resolved once per structure rebuild so
    /// the per-interval demand pass never hashes (session, node). Pointers
    /// into memory_ are stable (unordered_map never moves values); the expiry
    /// sweep cannot dangle them because a tree and its node memories share
    /// last-seen stamps and expire on the same sweep.
    std::vector<NodeMemory*> mem_slots;
  };

  /// Re-resolves `ct.mem_slots` against memory_ (interning missing nodes).
  void bind_memory_slots(CachedTree& ct);

  Params params_;
  sim::Rng rng_;
  CapacityEstimator capacities_;
  PassWorkspace ws_;
  std::unordered_map<net::SessionId, CachedTree> tree_cache_;
  std::vector<LabeledTree*> active_trees_;    ///< this interval's trees, input order
  std::vector<CachedTree*> active_cached_;  ///< same trees, with memory slots
  std::unordered_map<std::uint64_t, NodeMemory> memory_;
  /// (session,node) -> layer -> no-resubscribe-before time.
  std::unordered_map<std::uint64_t, std::unordered_map<int, sim::Time>> backoff_;
  std::uint64_t interval_count_{0};
};

}  // namespace tsim::core
