#include "core/toposense.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tsim::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

TopoSense::TopoSense(Params params, sim::Rng rng)
    : params_{params}, rng_{rng}, capacities_{params_} {}

BwEquality TopoSense::classify_equality(units::Bytes prev, units::Bytes cur) const {
  const double a = static_cast<double>(prev.count());
  const double b = static_cast<double>(cur.count());
  const double scale = std::max({a, b, 1.0});
  if (std::abs(a - b) <= params_.bw_equal_tolerance * scale) return BwEquality::kEqual;
  return a < b ? BwEquality::kLesser : BwEquality::kGreater;
}

int TopoSense::layers_for_bw(units::BitsPerSec bw) const {
  if (bw.bps() == kInf) return params_.layers.num_layers;
  return params_.layers.max_layers_for_bandwidth(bw);
}

void TopoSense::set_backoff(net::SessionId session, net::NodeId node, int layer, sim::Time now) {
  const double lo = params_.backoff_min.as_seconds();
  const double hi = params_.backoff_max.as_seconds();
  const sim::Time until = now + sim::Time::seconds(rng_.uniform(lo, std::max(lo, hi)));
  backoff_[memory_key(session, node)][layer] = until;
}

void TopoSense::maybe_backoff(net::SessionId session, net::NodeId node, int layer,
                              int stable_level, sim::Time now) {
  // A layer this node recently held cleanly is not the culprit — usually
  // another session's probe congested the shared link. Backing it off would
  // strand the victim below its proven level.
  if (layer <= stable_level) return;
  set_backoff(session, node, layer, now);
}

bool TopoSense::backing_off(net::SessionId session, net::NodeId node, int layer,
                            sim::Time now) const {
  const auto it = backoff_.find(memory_key(session, node));
  if (it == backoff_.end()) return false;
  const auto lit = it->second.find(layer);
  return lit != it->second.end() && lit->second > now;
}

bool TopoSense::backoff_on_path(const TreeIndex& tree, std::size_t node_index, int layer,
                                sim::Time now) const {
  if (backoff_.empty()) return false;  // common case: nothing is backed off
  // A backoff set at any ancestor covers the whole subtree: that is how the
  // controller coordinates receivers behind the same bottleneck.
  int i = static_cast<int>(node_index);
  while (i >= 0) {
    if (backing_off(tree.session(), tree.node(static_cast<std::size_t>(i)).node, layer, now)) {
      return true;
    }
    i = tree.parent(static_cast<std::size_t>(i));
  }
  return false;
}

void TopoSense::bind_memory_slots(CachedTree& ct) {
  const TreeIndex& tree = ct.lt.tree;
  ct.mem_slots.resize(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) {
    ct.mem_slots[i] = &memory_[memory_key(tree.session(), tree.node(i).node)];
  }
}

void TopoSense::compute_demands(LabeledTree& lt, const std::vector<NodeMemory*>& slots,
                                std::vector<int>& demand, sim::Time now, double window_s) {
  const TreeIndex& tree = lt.tree;
  demand.assign(tree.size(), 0);
  const auto& order = tree.bfs_order();
  const int max_layers = params_.layers.num_layers;

  // Per-node current-window bytes (leaf: reported; internal: max of children),
  // needed before the memory shift so compute bottom-up alongside demand.
  std::vector<units::Bytes> bytes_now(tree.size(), units::Bytes::zero());
  // Actual subscribed level per node (leaf: reported subscription; internal:
  // max over children) — distinct from demand, which may include adds the
  // receivers have not applied yet.
  std::vector<int> sub_level(tree.size(), 0);

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::size_t i = static_cast<std::size_t>(*it);
    const SessionNodeInput& n = tree.node(i);
    const int p = tree.parent(i);
    const bool parent_congested = p >= 0 && lt.congested[static_cast<std::size_t>(p)];

    units::Bytes b_now = n.is_receiver ? n.bytes_received : units::Bytes::zero();
    int agg = 0;
    int sub_agg = n.is_receiver ? std::max(n.subscription, 1) : 0;
    for (const auto c : tree.children(i)) {
      const std::size_t ci = static_cast<std::size_t>(c);
      b_now = std::max(b_now, bytes_now[ci]);
      agg = std::max(agg, demand[ci]);
      sub_agg = std::max(sub_agg, sub_level[ci]);
    }
    bytes_now[i] = b_now;
    sub_level[i] = std::max(sub_agg, 1);

    NodeMemory& mem = *slots[i];
    mem.last_seen_interval = interval_count_;
    const units::Bytes b_prev = mem.bytes_cur;  // T0–T1 window
    const BwEquality eq = classify_equality(b_prev, b_now);
    const CongestionHistory hist = push_history(mem.hist, lt.congested[i]);
    mem.hist = hist;
    mem.bytes_prev = mem.bytes_cur;
    mem.bytes_cur = b_now;

    // Track the congestion episode's starting demand: entering congestion
    // (bit pattern ..01) snapshots it; two consecutive clean intervals end
    // the episode (a single clean-looking window mid-episode — a lucky
    // burst-free second — must not forget which probe caused the trouble).
    const int level_now = sub_level[i];
    if ((hist & 0b11) == 0b01) {
      mem.episode_top = std::max(mem.episode_top, level_now);
    } else if ((hist & 0b11) == 0) {
      mem.episode_top = 0;
    }
    const int backoff_layer_floor = mem.episode_top;

    // Stable-level bookkeeping: three clean intervals *at one level* prove
    // it sustainable; without reconfirmation the proof slowly expires, so a
    // real capacity drop is eventually accepted. The run restarts whenever
    // the level changes — a freshly probed layer is unproven even if the
    // loss signal has not arrived yet.
    if (lt.congested[i] || level_now != mem.last_level) {
      mem.clean_run = 0;
    } else {
      ++mem.clean_run;
    }
    mem.last_level = level_now;
    if (mem.clean_run >= 3 && level_now >= mem.stable_level) {
      mem.stable_level = level_now;  // confirmed at (or above) the old proof
      mem.stable_age = 0;
    } else if (++mem.stable_age >= 10 && mem.stable_level > 0) {
      --mem.stable_level;  // unconfirmed proofs expire one layer at a time
      mem.stable_age = 0;
    }
    const int stable_level = mem.stable_level;

    const units::BitsPerSec prev_supply{b_prev.bits() / window_s};
    const units::BitsPerSec cur_supply{b_now.bits() / window_s};

    int d = 0;
    if (tree.is_leaf(i)) {
      const int sub = std::max(n.subscription, 1);
      if (parent_congested) {
        // Children of a congested node defer to that node (paper §III).
        d = sub;
      } else {
        const LeafDecision decision = leaf_decision(hist, eq);
        d = sub;
        switch (decision.action) {
          case LeafAction::kAddLayer: {
            const int next = std::min(sub + 1, max_layers);
            // The randomized backoff guards blind probes. When the fair-share
            // pass *knows* (from an estimated shared-link capacity) that
            // `next` fits this session's share, the add is not a blind probe
            // — e.g. a session knocked below its fair point by another
            // session's failed experiment may climb straight back.
            const int share_cap =
                lt.share_bps[i] == kInf ? 0 : layers_for_bw(units::BitsPerSec{lt.share_bps[i]});
            const bool proven_safe = next <= share_cap || next <= stable_level;
            const bool blocked = !proven_safe && backoff_on_path(tree, i, next, now);
            // Pace blind probes to the feedback latency of the control loop;
            // proven-safe adds (fair share / stable level) are not probes.
            const bool cooling =
                !proven_safe && mem.last_add_interval +
                                        static_cast<std::uint64_t>(
                                            params_.add_cooldown_intervals) >
                                    interval_count_;
            if (next > sub && !blocked && !cooling) {
              d = next;
              mem.last_add_interval = interval_count_;
            }
            break;
          }
          case LeafAction::kDropIfHighLoss:
            if (lt.loss[i] > params_.high_loss && sub > 1) {
              d = sub - 1;
              maybe_backoff(tree.session(), n.node, std::max(sub, backoff_layer_floor),
                            stable_level, now);
            }
            break;
          case LeafAction::kMaintain:
            break;
          case LeafAction::kReduceToPrevSupply:
            d = std::min(sub, std::max(1, layers_for_bw(prev_supply)));
            break;
          case LeafAction::kHalvePrevSupply:
            d = std::min(sub, std::max(1, layers_for_bw(prev_supply / 2.0)));
            if (d < sub) {
              maybe_backoff(tree.session(), n.node, std::max(sub, backoff_layer_floor),
                            stable_level, now);
            }
            break;
          case LeafAction::kHalveIfVeryHighLoss:
            if (lt.loss[i] > params_.very_high_loss) {
              d = std::min(sub, std::max(1, layers_for_bw(prev_supply / 2.0)));
            }
            break;
        }
      }
    } else {
      // Internal node: demand aggregates (maxes, for cumulative layers) the
      // children's demands, then Table I decides whether to accept or curb.
      if (parent_congested) {
        d = agg;  // defer upward; the congested ancestor acts
      } else {
        switch (internal_decision(hist, eq)) {
          case InternalAction::kAcceptChildren:
            d = agg;
            break;
          case InternalAction::kMaintain:
            d = std::min(agg, std::max(mem.last_demand, 1));
            break;
          case InternalAction::kHalveCurrentSupply: {
            const int cap = std::max(1, layers_for_bw(cur_supply / 2.0));
            d = std::min(agg, cap);
            if (d < agg) {
              maybe_backoff(tree.session(), n.node, std::max(agg, backoff_layer_floor),
                            stable_level, now);
            }
            break;
          }
          case InternalAction::kHalvePrevSupply: {
            const int cap = std::max(1, layers_for_bw(prev_supply / 2.0));
            d = std::min(agg, cap);
            if (d < agg) {
              maybe_backoff(tree.session(), n.node, std::max(agg, backoff_layer_floor),
                            stable_level, now);
            }
            break;
          }
        }
      }
      if (tree.node(i).is_receiver) d = std::max(d, 1);
    }

    // Every node on a session tree carries at least the base layer.
    d = std::clamp(d, 1, max_layers);
    demand[i] = d;
    mem.last_demand = d;
  }
}

void TopoSense::allocate_supply(const LabeledTree& lt, const std::vector<int>& demand,
                                std::vector<int>& supply) const {
  const TreeIndex& tree = lt.tree;
  supply.assign(tree.size(), 0);
  for (const auto idx : tree.bfs_order()) {
    const std::size_t i = static_cast<std::size_t>(idx);
    const int p = tree.parent(i);
    if (p < 0) {
      supply[i] = std::min(demand[i], params_.layers.num_layers);
      continue;
    }
    const std::size_t pi = static_cast<std::size_t>(p);
    // The subtree may not subscribe past its fair share on shared links nor
    // past the best bottleneck of any receiver below (§III).
    int cap = params_.layers.num_layers;
    cap = std::min(cap, layers_for_bw(units::BitsPerSec{lt.share_bps[i]}));
    cap = std::min(cap, layers_for_bw(units::BitsPerSec{lt.max_handle_bps[i]}));
    supply[i] = std::max(1, std::min({demand[i], supply[pi], cap}));
  }
}

AlgorithmOutput TopoSense::run_interval(const AlgorithmInput& input, sim::Time now) {
  ++interval_count_;
  AlgorithmOutput output;

  // Build and label all session trees first — capacity estimation and fair
  // sharing need the cross-session view. Trees are cached per session and
  // rebuilt only when the structure signature changes (receiver churn, route
  // change); otherwise only the measurements are refreshed in place.
  active_trees_.clear();
  active_cached_.clear();
  for (const SessionInput& session : input.sessions) {
    if (session.nodes.empty()) continue;
    const std::uint64_t signature = TreeIndex::structure_signature(session);
    auto it = tree_cache_.find(session.session);
    if (it == tree_cache_.end() || it->second.signature != signature) {
      CachedTree fresh{signature, interval_count_, LabeledTree{TreeIndex{session}}, {}};
      if (it == tree_cache_.end()) {
        it = tree_cache_.emplace(session.session, std::move(fresh)).first;
      } else {
        it->second = std::move(fresh);
      }
      assign_link_ids(it->second.lt, capacities_.links());
      bind_memory_slots(it->second);
    } else {
      it->second.lt.tree.refresh_measurements(session);
      it->second.last_seen_interval = interval_count_;
    }
    label_congestion(it->second.lt, params_);
    active_trees_.push_back(&it->second.lt);
    active_cached_.push_back(&it->second);
  }

  collect_link_aggregates(active_trees_, params_, capacities_.links().size(), ws_.aggregates);
  capacities_.update_aggregated(ws_.aggregates, input.window);
  capacities_.snapshot_capacities(ws_.cap_by_id);

  for (LabeledTree* lt : active_trees_) compute_bottlenecks(*lt, ws_.cap_by_id);
  compute_fair_shares(active_trees_, ws_.cap_by_id, params_, ws_);

  const double window_s = std::max(input.window.as_seconds(), 1e-9);
  std::vector<int> demand;
  std::vector<int> supply;
  for (CachedTree* ct : active_cached_) {
    LabeledTree& lt = ct->lt;
    compute_demands(lt, ct->mem_slots, demand, now, window_s);
    allocate_supply(lt, demand, supply);

    SessionDiagnostics diag;
    diag.session = lt.tree.session();
    for (const auto idx : lt.tree.bfs_order()) {
      const std::size_t i = static_cast<std::size_t>(idx);
      const SessionNodeInput& n = lt.tree.node(i);
      if (n.is_receiver) {
        output.prescriptions.push_back(
            Prescription{n.node, lt.tree.session(), std::max(1, supply[i])});
      }
      const int pi = lt.tree.parent(i);
      NodeDiagnostics nd;
      nd.node = n.node;
      nd.parent = pi < 0 ? net::kInvalidNode : lt.tree.node(static_cast<std::size_t>(pi)).node;
      nd.is_receiver = n.is_receiver;
      nd.congested = lt.congested[i];
      nd.loss_rate = units::LossFraction{lt.loss[i]};
      nd.bottleneck = units::BitsPerSec{lt.bottleneck_bps[i]};
      nd.share = units::BitsPerSec{lt.share_bps[i]};
      nd.demand = demand[i];
      nd.supply = supply[i];
      diag.nodes.push_back(nd);
    }
    output.diagnostics.push_back(std::move(diag));
  }

  // Expire stale backoffs and memories so long runs do not accrete state for
  // receivers that left.
  for (auto it = backoff_.begin(); it != backoff_.end();) {
    auto& layers = it->second;
    for (auto lit = layers.begin(); lit != layers.end();) {
      lit = lit->second <= now ? layers.erase(lit) : std::next(lit);
    }
    it = layers.empty() ? backoff_.erase(it) : std::next(it);
  }
  if ((interval_count_ & 0x3F) == 0) {
    for (auto it = memory_.begin(); it != memory_.end();) {
      it = it->second.last_seen_interval + 64 < interval_count_ ? memory_.erase(it)
                                                                : std::next(it);
    }
    for (auto it = tree_cache_.begin(); it != tree_cache_.end();) {
      it = it->second.last_seen_interval + 64 < interval_count_ ? tree_cache_.erase(it)
                                                                : std::next(it);
    }
  }

  return output;
}

}  // namespace tsim::core
