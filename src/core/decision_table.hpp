#pragma once

#include <cstdint>
#include <string_view>

namespace tsim::core {

/// Relationship of total bandwidth received in interval T0–T1 with respect to
/// T1–T2 (Table I, "BW Equality" column).
enum class BwEquality : std::uint8_t { kLesser, kEqual, kGreater };

/// Congestion-state history as the paper encodes it: a 3-bit integer with the
/// state at T0 (oldest) in bit 2, T1 in bit 1 and T2 (current) in bit 0;
/// CONGESTED=1.
using CongestionHistory = std::uint8_t;

inline constexpr CongestionHistory kHistoryMask = 0b111;

/// Pushes the current interval's congestion bit into a history.
[[nodiscard]] constexpr CongestionHistory push_history(CongestionHistory h, bool congested) {
  return static_cast<CongestionHistory>(((h << 1) | (congested ? 1 : 0)) & kHistoryMask);
}

/// Leaf actions of Table I.
enum class LeafAction : std::uint8_t {
  kAddLayer,             ///< add next layer, if not backing off
  kDropIfHighLoss,       ///< if loss rate is high: drop a layer, set backoff
  kMaintain,             ///< keep the current demand
  kReduceToPrevSupply,   ///< reduce demand to the supply in T0–Tn
  kHalvePrevSupply,      ///< reduce demand to half the supply in T0–Tn, set backoff
  kHalveIfVeryHighLoss,  ///< halve (T0–Tn supply) only when loss is very high
};

/// Internal-node actions of Table I.
enum class InternalAction : std::uint8_t {
  kAcceptChildren,     ///< accept all demands of the child nodes
  kMaintain,           ///< keep the previous demand
  kHalveCurrentSupply, ///< reduce demand to half the supply in Tn–T2n (recent interval)
  kHalvePrevSupply,    ///< reduce demand to half the supply in T0–Tn (older interval)
};

/// Whether the action, per Table I, also sets the backoff timer.
struct LeafDecision {
  LeafAction action;
  bool set_backoff;
};

/// Exact transcription of Table I for leaves. `history` must be <= 7.
[[nodiscard]] LeafDecision leaf_decision(CongestionHistory history, BwEquality equality);

/// Exact transcription of Table I for internal nodes.
[[nodiscard]] InternalAction internal_decision(CongestionHistory history, BwEquality equality);

[[nodiscard]] std::string_view to_string(LeafAction a);
[[nodiscard]] std::string_view to_string(InternalAction a);
[[nodiscard]] std::string_view to_string(BwEquality e);

}  // namespace tsim::core
