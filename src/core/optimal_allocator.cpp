#include "core/optimal_allocator.hpp"

#include <algorithm>
#include <limits>

#include "core/tree_index.hpp"

namespace tsim::core {

OptimalAllocator::OptimalAllocator(traffic::LayerSpec layers,
                                   std::unordered_map<LinkKey, units::BitsPerSec> capacities)
    : layers_{layers}, capacities_{std::move(capacities)} {}

std::vector<OptimalAllocator::ReceiverRef> OptimalAllocator::receivers_of(
    const std::vector<SessionInput>& sessions) const {
  std::vector<ReceiverRef> refs;
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    for (std::size_t n = 0; n < sessions[s].nodes.size(); ++n) {
      if (sessions[s].nodes[n].is_receiver) refs.push_back(ReceiverRef{s, n});
    }
  }
  return refs;
}

units::BitsPerSec OptimalAllocator::link_usage(const std::vector<SessionInput>& sessions,
                                               const std::vector<int>& levels,
                                               LinkKey link) const {
  // A session's traffic on a tree link is the cumulative rate of the highest
  // level subscribed by any receiver below the link's child endpoint.
  const auto refs = receivers_of(sessions);
  units::BitsPerSec usage = units::BitsPerSec::zero();
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const TreeIndex tree{sessions[s]};
    const int child = tree.index_of(link.to);
    const int parent = tree.index_of(link.from);
    if (child < 0 || parent < 0 || tree.parent(static_cast<std::size_t>(child)) != parent) {
      continue;  // link not on this session's tree
    }
    int max_level = 0;
    for (std::size_t r = 0; r < refs.size(); ++r) {
      if (refs[r].session_index != s) continue;
      // Is this receiver inside the subtree under `child`?
      int i = tree.index_of(sessions[s].nodes[refs[r].node_index].node);
      bool below = false;
      while (i >= 0) {
        if (i == child) {
          below = true;
          break;
        }
        i = tree.parent(static_cast<std::size_t>(i));
      }
      if (below) max_level = std::max(max_level, levels[r]);
    }
    usage += layers_.cumulative_rate(max_level);
  }
  return usage;
}

bool OptimalAllocator::feasible(const std::vector<SessionInput>& sessions,
                                const std::vector<int>& levels) const {
  // Order-free conjunction: the result is "every link fits", independent of
  // which infeasible link is met first.
  for (const auto& [link, capacity] : capacities_) {  // NOLINT-determinism(order-free)
    if (link_usage(sessions, levels, link) > capacity) return false;
  }
  return true;
}

std::vector<Prescription> OptimalAllocator::allocate(
    const std::vector<SessionInput>& sessions) const {
  const auto refs = receivers_of(sessions);
  std::vector<int> levels(refs.size(), 0);
  std::vector<bool> blocked(refs.size(), false);

  // Raising one receiver only changes usage on the links of its own root
  // path, and only where the new level exceeds the session's current subtree
  // maximum below that link — so each greedy step needs those few links, not
  // the full feasible() rescan (which walks every receiver for every link and
  // made building a ~1000-receiver tiered scenario take minutes). The usage
  // deltas are differences of exact integer-valued layer rates, so the
  // incremental accounting blocks each receiver at exactly the same step the
  // full rescan would.
  struct TrackedLink {
    double capacity;
    double usage{0.0};
    std::vector<int> session_max;  ///< parallel to `sessions`
  };
  std::vector<TrackedLink> links;
  std::unordered_map<LinkKey, std::size_t> link_index;
  std::vector<TreeIndex> trees;
  trees.reserve(sessions.size());
  for (const SessionInput& session : sessions) trees.emplace_back(session);

  // Per-receiver path: tracked (capacity-constrained) tree links from the
  // receiver up to its session root, discovered in deterministic ref order.
  std::vector<std::vector<std::size_t>> paths(refs.size());
  for (std::size_t r = 0; r < refs.size(); ++r) {
    const std::size_t si = refs[r].session_index;
    const TreeIndex& tree = trees[si];
    for (int i = tree.index_of(sessions[si].nodes[refs[r].node_index].node); i >= 0;) {
      const int p = tree.parent(static_cast<std::size_t>(i));
      if (p < 0) break;
      const LinkKey key{tree.node(static_cast<std::size_t>(p)).node,
                        tree.node(static_cast<std::size_t>(i)).node};
      if (const auto cap = capacities_.find(key); cap != capacities_.end()) {
        const auto [it, inserted] = link_index.try_emplace(key, links.size());
        if (inserted) {
          links.push_back(
              TrackedLink{cap->second.bps(), 0.0, std::vector<int>(sessions.size(), 0)});
        }
        paths[r].push_back(it->second);
      }
      i = p;
    }
  }

  // Greedy lexicographic max-min: repeatedly raise the lowest unblocked
  // receiver (ties by discovery order); stop when all are blocked or maxed.
  while (true) {
    int best = -1;
    for (std::size_t r = 0; r < refs.size(); ++r) {
      if (blocked[r] || levels[r] >= layers_.num_layers) continue;
      if (best < 0 || levels[r] < levels[static_cast<std::size_t>(best)]) {
        best = static_cast<int>(r);
      }
    }
    if (best < 0) break;
    const auto r = static_cast<std::size_t>(best);
    const std::size_t si = refs[r].session_index;
    const int next = levels[r] + 1;
    bool ok = true;
    for (const std::size_t li : paths[r]) {
      const TrackedLink& link = links[li];
      if (next <= link.session_max[si]) continue;  // this link's max is elsewhere
      const double usage = link.usage - layers_.cumulative_rate(link.session_max[si]).bps() +
                           layers_.cumulative_rate(next).bps();
      if (usage > link.capacity) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      blocked[r] = true;
      continue;
    }
    levels[r] = next;
    for (const std::size_t li : paths[r]) {
      TrackedLink& link = links[li];
      if (next <= link.session_max[si]) continue;
      link.usage += layers_.cumulative_rate(next).bps() -
                    layers_.cumulative_rate(link.session_max[si]).bps();
      link.session_max[si] = next;
    }
  }

  std::vector<Prescription> result;
  result.reserve(refs.size());
  for (std::size_t r = 0; r < refs.size(); ++r) {
    const SessionInput& session = sessions[refs[r].session_index];
    result.push_back(Prescription{session.nodes[refs[r].node_index].node, session.session,
                                  levels[r]});
  }
  return result;
}

}  // namespace tsim::core
