#include "core/optimal_allocator.hpp"

#include <algorithm>
#include <limits>

#include "core/tree_index.hpp"

namespace tsim::core {

OptimalAllocator::OptimalAllocator(traffic::LayerSpec layers,
                                   std::unordered_map<LinkKey, double> capacity_bps)
    : layers_{layers}, capacity_bps_{std::move(capacity_bps)} {}

std::vector<OptimalAllocator::ReceiverRef> OptimalAllocator::receivers_of(
    const std::vector<SessionInput>& sessions) const {
  std::vector<ReceiverRef> refs;
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    for (std::size_t n = 0; n < sessions[s].nodes.size(); ++n) {
      if (sessions[s].nodes[n].is_receiver) refs.push_back(ReceiverRef{s, n});
    }
  }
  return refs;
}

double OptimalAllocator::link_usage(const std::vector<SessionInput>& sessions,
                                    const std::vector<int>& levels, LinkKey link) const {
  // A session's traffic on a tree link is the cumulative rate of the highest
  // level subscribed by any receiver below the link's child endpoint.
  const auto refs = receivers_of(sessions);
  double usage = 0.0;
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const TreeIndex tree{sessions[s]};
    const int child = tree.index_of(link.to);
    const int parent = tree.index_of(link.from);
    if (child < 0 || parent < 0 || tree.parent(static_cast<std::size_t>(child)) != parent) {
      continue;  // link not on this session's tree
    }
    int max_level = 0;
    for (std::size_t r = 0; r < refs.size(); ++r) {
      if (refs[r].session_index != s) continue;
      // Is this receiver inside the subtree under `child`?
      int i = tree.index_of(sessions[s].nodes[refs[r].node_index].node);
      bool below = false;
      while (i >= 0) {
        if (i == child) {
          below = true;
          break;
        }
        i = tree.parent(static_cast<std::size_t>(i));
      }
      if (below) max_level = std::max(max_level, levels[r]);
    }
    usage += layers_.cumulative_rate_bps(max_level);
  }
  return usage;
}

bool OptimalAllocator::feasible(const std::vector<SessionInput>& sessions,
                                const std::vector<int>& levels) const {
  // Order-free conjunction: the result is "every link fits", independent of
  // which infeasible link is met first.
  for (const auto& [link, capacity] : capacity_bps_) {  // NOLINT-determinism(order-free)
    if (link_usage(sessions, levels, link) > capacity) return false;
  }
  return true;
}

std::vector<Prescription> OptimalAllocator::allocate(
    const std::vector<SessionInput>& sessions) const {
  const auto refs = receivers_of(sessions);
  std::vector<int> levels(refs.size(), 0);
  std::vector<bool> blocked(refs.size(), false);

  // Greedy lexicographic max-min: repeatedly raise the lowest unblocked
  // receiver (ties by discovery order); stop when all are blocked or maxed.
  while (true) {
    int best = -1;
    for (std::size_t r = 0; r < refs.size(); ++r) {
      if (blocked[r] || levels[r] >= layers_.num_layers) continue;
      if (best < 0 || levels[r] < levels[static_cast<std::size_t>(best)]) {
        best = static_cast<int>(r);
      }
    }
    if (best < 0) break;
    const auto r = static_cast<std::size_t>(best);
    ++levels[r];
    if (!feasible(sessions, levels)) {
      --levels[r];
      blocked[r] = true;
    }
  }

  std::vector<Prescription> result;
  result.reserve(refs.size());
  for (std::size_t r = 0; r < refs.size(); ++r) {
    const SessionInput& session = sessions[refs[r].session_index];
    result.push_back(Prescription{session.nodes[refs[r].node_index].node, session.session,
                                  levels[r]});
  }
  return result;
}

}  // namespace tsim::core
