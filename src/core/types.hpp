#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/units.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tsim::core {

/// One node of a session tree as the controller sees it. Trees are given via
/// parent pointers; the source has parent == kInvalidNode. Loss/bytes are
/// meaningful for receiver leaves only (internal values are derived).
struct SessionNodeInput {
  net::NodeId node{net::kInvalidNode};
  net::NodeId parent{net::kInvalidNode};
  bool is_receiver{false};
  units::LossFraction loss_rate{};  ///< receiver's loss over the last window
  units::Bytes bytes_received{};    ///< receiver's bytes over the last window
  int subscription{0};              ///< receiver's current layer count
};

/// One multicast session's tree + measurements for one algorithm interval.
struct SessionInput {
  net::SessionId session{0};
  net::NodeId source{net::kInvalidNode};
  std::vector<SessionNodeInput> nodes;
};

/// Everything the TopoSense algorithm consumes per interval.
struct AlgorithmInput {
  std::vector<SessionInput> sessions;
  sim::Time window{sim::Time::seconds(1)};  ///< measurement window length
};

/// Suggested subscription for one receiver.
struct Prescription {
  net::NodeId receiver{net::kInvalidNode};
  net::SessionId session{0};
  int subscription{1};
};

/// Per-node diagnostics exposed for tests, traces, benches and the
/// invariant auditor (which re-derives the pass postconditions from them).
struct NodeDiagnostics {
  net::NodeId node{net::kInvalidNode};
  net::NodeId parent{net::kInvalidNode};  ///< tree parent; kInvalidNode for the root
  bool is_receiver{false};
  bool congested{false};
  units::LossFraction loss_rate{};
  units::BitsPerSec bottleneck{};  ///< min estimated capacity source -> node
  units::BitsPerSec share{};       ///< fair share along the path source -> node
  int demand{0};
  int supply{0};
};

struct SessionDiagnostics {
  net::SessionId session{0};
  std::vector<NodeDiagnostics> nodes;
};

struct AlgorithmOutput {
  std::vector<Prescription> prescriptions;
  std::vector<SessionDiagnostics> diagnostics;
};

/// A directed tree edge identified by its endpoints; shared-link state (the
/// capacity estimates) is keyed by this across sessions.
struct LinkKey {
  net::NodeId from{net::kInvalidNode};
  net::NodeId to{net::kInvalidNode};
  [[nodiscard]] friend bool operator==(LinkKey, LinkKey) = default;
};

}  // namespace tsim::core

template <>
struct std::hash<tsim::core::LinkKey> {
  std::size_t operator()(tsim::core::LinkKey k) const noexcept {
    return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(k.from) << 32) | k.to);
  }
};
