#include "core/capacity_estimator.hpp"

#include <algorithm>

namespace tsim::core {

void CapacityEstimator::update(const std::vector<LinkObservation>& observations,
                               sim::Time window) {
  // Age existing estimates: inflate, and reset-to-infinity on schedule. The
  // reset point is staggered per link (deterministically, from the link key):
  // estimates are usually born together in one congestion episode, and
  // resetting them all at once would fire synchronized probe storms.
  for (auto it = estimates_.begin(); it != estimates_.end();) {
    LinkEstimate& est = it->second;
    est.capacity_bps *= (1.0 + params_->capacity_growth);
    ++est.age_intervals;
    const std::size_t h = std::hash<LinkKey>{}(it->first);
    const double jitter =
        1.0 + params_->capacity_reset_jitter * static_cast<double>(h % 1024) / 1024.0;
    const int reset_at =
        std::max(1, static_cast<int>(params_->capacity_reset_intervals * jitter));
    if (est.age_intervals >= reset_at) {
      it = estimates_.erase(it);  // back to the infinite-capacity assumption
    } else {
      ++it;
    }
  }

  const double window_s = window.as_seconds();
  if (window_s <= 0.0) return;

  for (const LinkObservation& obs : observations) {
    if (obs.sessions.empty()) continue;
    if (params_->estimate_shared_links_only && obs.sessions.size() < 2) continue;

    bool all_above = true;
    double weighted_loss = 0.0;
    double total_bytes = 0.0;
    for (const LinkSessionObservation& s : obs.sessions) {
      all_above = all_above && s.loss_rate > params_->p_threshold;
      weighted_loss += s.loss_rate * static_cast<double>(s.max_subtree_bytes);
      total_bytes += static_cast<double>(s.max_subtree_bytes);
    }
    const double overall_loss = total_bytes > 0.0 ? weighted_loss / total_bytes : 0.0;

    if (!all_above || overall_loss <= params_->p_threshold) continue;

    // Delivered bits/s across the link this interval. A session's traffic on
    // the link is the union of the layers any downstream receiver kept, which
    // the best downstream receiver's byte count approximates.
    const double delivered_bps = total_bytes * 8.0 / window_s;
    if (delivered_bps <= 0.0) continue;

    // Delivered throughput under loss is a *lower bound* on capacity: during
    // the first congested window (everyone oversubscribed) it measures the
    // link well, but in the collapse tail (sessions already backed off,
    // residual queue loss) it under-measures badly. Never lower an existing
    // estimate — downward adaptation is what the periodic reset is for.
    const auto it = estimates_.find(obs.link);
    if (it != estimates_.end() && it->second.capacity_bps >= delivered_bps) continue;
    estimates_[obs.link] = LinkEstimate{delivered_bps, 0};
  }
}

double CapacityEstimator::capacity_bps(LinkKey link) const {
  const auto it = estimates_.find(link);
  return it == estimates_.end() ? std::numeric_limits<double>::infinity()
                                : it->second.capacity_bps;
}

}  // namespace tsim::core
