#include "core/capacity_estimator.hpp"

#include <algorithm>
#include <functional>

namespace tsim::core {

void CapacityEstimator::update_aggregated(const LinkAggregates& agg, sim::Time window) {
  estimates_.resize(links_.size());

  // Age existing estimates: inflate, and reset-to-infinity on schedule. The
  // reset point is staggered per link (deterministically, from the link key):
  // estimates are usually born together in one congestion episode, and
  // resetting them all at once would fire synchronized probe storms.
  for (std::uint32_t id = 0; id < estimates_.size(); ++id) {
    LinkEstimate& est = estimates_[id];
    if (!est.finite()) continue;
    est.capacity_bps *= (1.0 + params_->capacity_growth);
    ++est.age_intervals;
    const std::size_t h = std::hash<LinkKey>{}(links_.key(id));
    const double jitter =
        1.0 + params_->capacity_reset_jitter * static_cast<double>(h % 1024) / 1024.0;
    const int reset_at =
        std::max(1, static_cast<int>(params_->capacity_reset_intervals * jitter));
    if (est.age_intervals >= reset_at) {
      est = LinkEstimate{};  // back to the infinite-capacity assumption
    }
  }

  const double window_s = window.as_seconds();
  if (window_s <= 0.0) return;

  const std::size_t n = std::min<std::size_t>(agg.size(), estimates_.size());
  for (std::uint32_t id = 0; id < n; ++id) {
    const LinkAggregate& a = agg.row(id);
    if (a.sessions == 0) continue;
    if (params_->estimate_shared_links_only && a.sessions < 2) continue;

    const double overall_loss =
        a.total_bytes > 0.0 ? a.weighted_loss / a.total_bytes : 0.0;
    if (!a.all_above_threshold || overall_loss <= params_->p_threshold) continue;

    // Delivered bits/s across the link this interval. A session's traffic on
    // the link is the union of the layers any downstream receiver kept, which
    // the best downstream receiver's byte count approximates.
    const double delivered_bps = a.total_bytes * 8.0 / window_s;
    if (delivered_bps <= 0.0) continue;

    // Delivered throughput under loss is a *lower bound* on capacity: during
    // the first congested window (everyone oversubscribed) it measures the
    // link well, but in the collapse tail (sessions already backed off,
    // residual queue loss) it under-measures badly. Never lower an existing
    // estimate — downward adaptation is what the periodic reset is for.
    if (estimates_[id].finite() && estimates_[id].capacity_bps >= delivered_bps) continue;
    estimates_[id] = LinkEstimate{delivered_bps, 0};
  }
}

void CapacityEstimator::update(const std::vector<LinkObservation>& observations,
                               sim::Time window) {
  LinkAggregates agg;
  // Intern first so the aggregate table covers every observed link.
  for (const LinkObservation& obs : observations) links_.intern(obs.link);
  agg.reset(links_.size());
  for (const LinkObservation& obs : observations) {
    if (obs.sessions.empty()) continue;
    LinkAggregate& a = agg.row(links_.find(obs.link));
    for (const LinkSessionObservation& s : obs.sessions) {
      ++a.sessions;
      a.all_above_threshold =
          a.all_above_threshold && s.loss_rate > params_->p_threshold;
      a.weighted_loss += s.loss_rate * static_cast<double>(s.max_subtree_bytes);
      a.total_bytes += static_cast<double>(s.max_subtree_bytes);
    }
  }
  update_aggregated(agg, window);
}

double CapacityEstimator::capacity_bps(LinkKey link) const {
  const std::uint32_t id = links_.find(link);
  return id == kNoLinkId ? std::numeric_limits<double>::infinity() : capacity_by_id(id);
}

void CapacityEstimator::snapshot_capacities(std::vector<double>& out) const {
  out.assign(links_.size(), std::numeric_limits<double>::infinity());
  const std::size_t n = std::min(out.size(), estimates_.size());
  for (std::size_t id = 0; id < n; ++id) out[id] = estimates_[id].capacity_bps;
}

std::size_t CapacityEstimator::finite_estimates() const {
  std::size_t n = 0;
  for (const LinkEstimate& est : estimates_) n += est.finite() ? 1 : 0;
  return n;
}

}  // namespace tsim::core
