// Hot-path purity annotations, consumed by tools/hotpath/toposense_hotpath.
//
// The event datapath (calendar-queue pop, LinkHot enqueue/tx-complete, CSR
// fan-out credit, fluid relaxation passes, shard worker inner loop) must stay
// allocation-, lock-, syscall-, and throw-free: benchmarks observed that
// property, these annotations make it a statically checked contract.
//
//  * HOT_PATH marks a function as a datapath ROOT: the analyzer walks every
//    call reachable from it and flags heap allocation, growing container
//    calls, mutex/CV acquisition, I/O and logging, `throw`, and wall-clock or
//    ambient-random sources (docs/static-analysis.md, "Hot-path purity
//    analyzer").
//  * HOT_PATH_EXEMPT("reason") marks an audited cold branch — a function
//    reachable from a root whose body is deliberately outside the contract
//    (epoch-amortized rebuilds, first-use interning, fault-window
//    diagnostics). The reason string is mandatory; the analyzer rejects an
//    empty one. Exempt functions terminate the reachability walk, so keep
//    them leaves of the hot region.
//  * Line-level grants use `// HOTPATH_ALLOW(rule: reason)` comments for
//    operations that are inside the contract's spirit but trip a rule
//    textually (push_back into capacity reserved at setup, the one
//    shard-claim lock per window). See docs/static-analysis.md for the
//    catalogue of rule names.
//
// On Clang the macros expand to [[clang::annotate]] so AST tooling sees them;
// elsewhere they compile away. toposense_hotpath itself matches the macro
// tokens, so the contract is enforced on every toolchain.
#pragma once

#if defined(__clang__)
#define HOT_PATH [[clang::annotate("toposense::hot_path")]]
#define HOT_PATH_EXEMPT(reason) [[clang::annotate("toposense::hot_path_exempt:" reason)]]
#else
#define HOT_PATH
#define HOT_PATH_EXEMPT(reason)
#endif
