// Capability-attributed wrappers over <mutex> so Clang's thread-safety
// analysis (-Wthread-safety, see core/thread_annotations.hpp) can track which
// lock protects which member. Zero overhead: every method forwards to the
// underlying std type and is inlined away; non-Clang builds see plain
// std::mutex behaviour with the attributes compiled out.
//
// Rules of use (docs/static-analysis.md, "Thread-safety annotations"):
//  * never hold a bare std::mutex member in simulator code — use core::Mutex
//    so the capability has a name the analysis can attach TS_GUARDED_BY to;
//  * lock with core::LockGuard (scoped) or core::UniqueLock (when a
//    condition variable needs to release/reacquire);
//  * condition-variable waits use core::ConditionVariable, which accepts a
//    core::UniqueLock directly. Predicate loops belong in the annotated
//    caller (`while (!ready_) cv.wait(lock);`), not in a lambda — the
//    analysis does not propagate capabilities into closures.
#pragma once

#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.hpp"

namespace tsim::core {

/// std::mutex carrying the Clang `capability` attribute.
class TS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TS_ACQUIRE() { mutex_.lock(); }
  void unlock() TS_RELEASE() { mutex_.unlock(); }

  /// The wrapped std::mutex, for std machinery that needs the concrete type.
  /// Callers must already hold or be acquiring this capability.
  [[nodiscard]] std::mutex& native_handle() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// std::lock_guard-shaped scoped lock over core::Mutex.
class TS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) TS_ACQUIRE(mutex) : mutex_{mutex} { mutex_.lock(); }
  ~LockGuard() TS_RELEASE() { mutex_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// std::unique_lock over core::Mutex, for condition-variable waits. Always
/// holds the lock for its full scope (no deferred/adopt modes — the analysis
/// cannot track conditionally-held capabilities, and nothing here needs them).
class TS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) TS_ACQUIRE(mutex) : lock_{mutex.native_handle()} {}
  ~UniqueLock() TS_RELEASE() {}  // body, not `= default`: the attribute must sit on a plain declaration
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

 private:
  friend class ConditionVariable;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable accepting core::UniqueLock. wait() releases and
/// reacquires the lock internally; the analysis models the capability as held
/// across the call, which matches the caller-visible contract (guarded state
/// may only be *observed* before and after, exactly what a predicate loop
/// does).
class ConditionVariable {
 public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }
  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

 private:
  std::condition_variable cv_;
};

}  // namespace tsim::core
