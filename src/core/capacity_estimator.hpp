#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "core/params.hpp"
#include "core/types.hpp"

namespace tsim::core {

/// What one session measured across one tree link during an interval.
struct LinkSessionObservation {
  net::SessionId session{0};
  double loss_rate{0.0};                 ///< session loss at the link's head node
  std::uint64_t max_subtree_bytes{0};    ///< max bytes any downstream receiver got
};

/// Everything observed on one link in one interval.
struct LinkObservation {
  LinkKey link{};
  std::vector<LinkSessionObservation> sessions;
};

/// State of one link's capacity estimate.
struct LinkEstimate {
  double capacity_bps{std::numeric_limits<double>::infinity()};
  int age_intervals{0};  ///< intervals since the estimate was (re)computed
  [[nodiscard]] bool finite() const {
    return capacity_bps != std::numeric_limits<double>::infinity();
  }
};

/// The paper's loss-driven link-capacity estimator (§III "Estimating Link
/// Capacities"). Links are assumed infinite until (1) the overall loss at the
/// link head exceeds p_threshold AND (2) every session crossing the link sees
/// loss above p_threshold; then capacity := delivered bits/s that interval.
/// Finite estimates inflate by `capacity_growth` each interval (reports can
/// miss in-flight bytes) and are reset to infinity every
/// `capacity_reset_intervals` intervals so transient flows and downstream
/// bottlenecks cannot poison the estimate forever.
class CapacityEstimator {
 public:
  explicit CapacityEstimator(const Params& params) : params_{&params} {}

  /// Processes one interval's observations. `window` is the measurement
  /// window length.
  void update(const std::vector<LinkObservation>& observations, sim::Time window);

  /// Current estimate for a link (+inf when unknown).
  [[nodiscard]] double capacity_bps(LinkKey link) const;

  [[nodiscard]] const std::unordered_map<LinkKey, LinkEstimate>& estimates() const {
    return estimates_;
  }

  /// Drops all finite estimates (used by tests).
  void reset() { estimates_.clear(); }

 private:
  const Params* params_;
  std::unordered_map<LinkKey, LinkEstimate> estimates_;
};

}  // namespace tsim::core
