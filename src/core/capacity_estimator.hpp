#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/link_interner.hpp"
#include "core/params.hpp"
#include "core/types.hpp"

namespace tsim::core {

/// What one session measured across one tree link during an interval.
struct LinkSessionObservation {
  net::SessionId session{0};
  double loss_rate{0.0};                 ///< session loss at the link's head node
  std::uint64_t max_subtree_bytes{0};    ///< max bytes any downstream receiver got
};

/// Everything observed on one link in one interval.
struct LinkObservation {
  LinkKey link{};
  std::vector<LinkSessionObservation> sessions;
};

/// Per-link aggregate of one interval's session observations — everything the
/// estimator needs, reduced at collection time so the hot path never builds
/// per-link session vectors.
struct LinkAggregate {
  std::uint32_t sessions{0};
  bool all_above_threshold{true};  ///< every session's loss > p_threshold
  double weighted_loss{0.0};       ///< Σ loss * bytes
  double total_bytes{0.0};         ///< Σ max_subtree_bytes
};

/// Flat per-link aggregate table indexed by interned link id. Owned by the
/// caller and reused across intervals: `reset` only zeroes (and grows) the
/// storage, it never shrinks or rehashes.
class LinkAggregates {
 public:
  /// Prepares the table for an interval over `links` interned links.
  void reset(std::size_t links) {
    rows_.assign(links, LinkAggregate{});
  }

  [[nodiscard]] LinkAggregate& row(std::uint32_t id) { return rows_[id]; }
  [[nodiscard]] const LinkAggregate& row(std::uint32_t id) const { return rows_[id]; }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }

 private:
  std::vector<LinkAggregate> rows_;
};

/// State of one link's capacity estimate.
struct LinkEstimate {
  double capacity_bps{std::numeric_limits<double>::infinity()};
  int age_intervals{0};  ///< intervals since the estimate was (re)computed
  [[nodiscard]] bool finite() const {
    return capacity_bps != std::numeric_limits<double>::infinity();
  }
};

/// The paper's loss-driven link-capacity estimator (§III "Estimating Link
/// Capacities"). Links are assumed infinite until (1) the overall loss at the
/// link head exceeds p_threshold AND (2) every session crossing the link sees
/// loss above p_threshold; then capacity := delivered bits/s that interval.
/// Finite estimates inflate by `capacity_growth` each interval (reports can
/// miss in-flight bytes) and are reset to infinity every
/// `capacity_reset_intervals` intervals so transient flows and downstream
/// bottlenecks cannot poison the estimate forever.
///
/// Storage is dense: the estimator owns the LinkInterner that assigns every
/// link a uint32 id (stable across intervals — a topology-epoch artifact),
/// and estimates live in a flat vector indexed by id. Iteration order is
/// id order, i.e. deterministic first-encounter order, not hash order.
class CapacityEstimator {
 public:
  explicit CapacityEstimator(const Params& params) : params_{&params} {}

  /// The link id table shared with the passes (ids index this estimator's
  /// storage and every per-link pass table).
  [[nodiscard]] LinkInterner& links() { return links_; }
  [[nodiscard]] const LinkInterner& links() const { return links_; }

  /// Processes one interval's aggregated observations (hot path). `agg` must
  /// be indexed by this estimator's link ids; `window` is the measurement
  /// window length.
  void update_aggregated(const LinkAggregates& agg, sim::Time window);

  /// Convenience wrapper for tests and offline callers: interns the observed
  /// links, aggregates, and delegates to update_aggregated.
  void update(const std::vector<LinkObservation>& observations, sim::Time window);

  /// Current estimate for a link (+inf when unknown).
  [[nodiscard]] double capacity_bps(LinkKey link) const;

  /// Current estimate by interned id (+inf when unknown). O(1).
  [[nodiscard]] double capacity_by_id(std::uint32_t id) const {
    return id < estimates_.size() ? estimates_[id].capacity_bps
                                  : std::numeric_limits<double>::infinity();
  }

  /// Copies all per-id capacities into `out` (sized to links().size()) so the
  /// passes can do branch-free array lookups.
  void snapshot_capacities(std::vector<double>& out) const;

  /// Number of links currently holding a finite estimate.
  [[nodiscard]] std::size_t finite_estimates() const;

  /// Drops all finite estimates (used by tests). Interned ids survive — they
  /// are topology state, not estimate state.
  void reset() { estimates_.assign(links_.size(), LinkEstimate{}); }

 private:
  const Params* params_;
  LinkInterner links_;
  std::vector<LinkEstimate> estimates_;  ///< indexed by link id
};

}  // namespace tsim::core
