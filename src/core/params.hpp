#pragma once

#include "sim/time.hpp"
#include "traffic/layer_spec.hpp"

namespace tsim::core {

/// Tunables of the TopoSense algorithm. Defaults follow the paper where it
/// gives numbers and sensible engineering choices where it does not (each
/// such choice has an ablation bench; see DESIGN.md).
struct Params {
  /// Loss-rate threshold above which a node counts as congested
  /// (p_threshold in the paper).
  double p_threshold{0.02};

  /// "loss rate is high" in Table I (leaf drop on history 001/Lesser).
  double high_loss{0.08};

  /// "loss is very high" in Table I (leaf halving on 3,7/Greater).
  double very_high_loss{0.20};

  /// Fraction of children whose loss must sit close to the mean child loss
  /// for an internal node to be labelled congested (eta_similar).
  double eta_similar{0.6};

  /// Band around the mean child loss that counts as "close": the max of this
  /// absolute band and `similar_rel` times the mean. The relative term keeps
  /// heavily congested siblings (e.g. 20% vs 38% loss) classified as sharing
  /// one bottleneck — at high loss rates, absolute spread is large.
  double similar_band{0.02};
  double similar_rel{0.5};

  /// Relative tolerance for the Table-I "BW Equality" comparison of bytes
  /// received in the two preceding intervals.
  double bw_equal_tolerance{0.15};

  /// Multiplicative inflation applied to a finite link-capacity estimate each
  /// interval ("the estimate is increased every interval by a small amount").
  double capacity_growth{0.02};

  /// A finite capacity estimate is discarded (reset to infinity) after this
  /// many intervals ("the capacity is reset to infinity at periodic
  /// intervals and recomputed").
  int capacity_reset_intervals{25};

  /// Estimate capacities only for links crossed by two or more sessions, as
  /// the paper's stage list prescribes ("Estimate link bandwidths for all
  /// shared links"): estimates exist to arbitrate between sessions. With
  /// false, every lossy link is estimated — the ablation shows this pins
  /// receivers to transient under-estimates on their access links.
  bool estimate_shared_links_only{true};

  /// Per-link deterministic stagger of the reset point, as a fraction of
  /// capacity_reset_intervals. Estimates are usually born together in one
  /// congestion episode; staggering their resets avoids synchronized probe
  /// storms. 0 disables (exact resets, used by unit tests).
  double capacity_reset_jitter{0.5};

  /// Algorithm period: reports are aggregated and suggestions recomputed
  /// once per interval.
  sim::Time interval{sim::Time::seconds(2)};

  /// Minimum intervals between successive layer additions by one receiver.
  ///1 reproduces Table I verbatim (an eligible leaf adds every interval);
  /// larger values pace blind probes below the control loop's feedback lag.
  /// In practice pacing trades probe depth for probe frequency and ends up
  /// roughly neutral (see the interval-size ablation), so the paper's
  /// add-per-interval behaviour is the default.
  int add_cooldown_intervals{1};

  /// Randomized backoff applied to a dropped layer so no receiver in the
  /// subtree re-subscribes it immediately ("random back-off interval"). The
  /// paper tunes stability with exactly this knob; a probe that fails costs
  /// several seconds of congestion (loss window + report + interval +
  /// suggestion + IGMP leave), so probes must be spaced well apart.
  sim::Time backoff_min{sim::Time::seconds(30)};
  sim::Time backoff_max{sim::Time::seconds(90)};

  /// The layered encoding in use (shared with sources and receivers).
  traffic::LayerSpec layers{};
};

}  // namespace tsim::core
