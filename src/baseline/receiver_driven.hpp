#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "transport/receiver_endpoint.hpp"

namespace tsim::baseline {

/// Receiver-driven layered multicast baseline (RLM-family): each receiver
/// adapts purely from its own end-to-end loss, with per-layer join-experiment
/// timers that back off multiplicatively after failed experiments. No
/// controller, no topology information, no cross-receiver coordination — the
/// contrast the paper's introduction motivates (an uninformed receiver can
/// misattribute a shared-bottleneck loss and make the wrong move).
class ReceiverDrivenController {
 public:
  struct Config {
    sim::Time period{sim::Time::seconds(2)};       ///< decision cadence
    double drop_loss{0.05};                        ///< drop a layer above this loss
    double add_loss{0.01};                         ///< join experiment allowed below this
    int stable_intervals{3};                       ///< clean intervals required before adding
    sim::Time join_timer_min{sim::Time::seconds(5)};   ///< initial per-layer backoff
    sim::Time join_timer_max{sim::Time::seconds(600)}; ///< backoff ceiling
    double backoff_multiplier{2.0};                ///< growth after each failed experiment
    sim::Time start{sim::Time::zero()};
  };

  ReceiverDrivenController(sim::Simulation& simulation, transport::ReceiverEndpoint& endpoint,
                           Config config);

  void start();

  [[nodiscard]] std::uint64_t layers_added() const { return adds_; }
  [[nodiscard]] std::uint64_t layers_dropped() const { return drops_; }

 private:
  void tick();

  sim::Simulation& simulation_;
  transport::ReceiverEndpoint& endpoint_;
  Config config_;
  sim::Rng rng_;
  std::vector<sim::Time> join_not_before_;  ///< per layer (1-based index-1)
  std::vector<sim::Time> join_timer_;       ///< current backoff per layer
  int clean_intervals_{0};
  int last_added_layer_{0};                 ///< layer under experiment (0 = none)
  sim::Time experiment_deadline_{};
  std::uint64_t adds_{0};
  std::uint64_t drops_{0};
};

}  // namespace tsim::baseline
