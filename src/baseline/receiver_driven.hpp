#pragma once

#include <cstdint>
#include <vector>

#include "control/adaptation_controller.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "transport/receiver_endpoint.hpp"

namespace tsim::baseline {

/// Receiver-driven layered multicast baseline (RLM-family): each receiver
/// adapts purely from its own end-to-end loss, with per-layer join-experiment
/// timers that back off multiplicatively after failed experiments. No
/// controller, no topology information, no cross-receiver coordination — the
/// contrast the paper's introduction motivates (an uninformed receiver can
/// misattribute a shared-bottleneck loss and make the wrong move).
///
/// One instance drives any number of receivers; the per-receiver state
/// (including each receiver's own rng stream, keyed "rlm/<node>/<session>" so
/// runs reproduce the pre-refactor streams exactly) is fully independent —
/// the shared object only exists so the scheme plugs into the
/// control::AdaptationController wiring like every other controller.
class ReceiverDrivenController final : public control::AdaptationController {
 public:
  struct Config {
    sim::Time period{sim::Time::seconds(2)};       ///< decision cadence
    double drop_loss{0.05};                        ///< drop a layer above this loss
    double add_loss{0.01};                         ///< join experiment allowed below this
    int stable_intervals{3};                       ///< clean intervals required before adding
    sim::Time join_timer_min{sim::Time::seconds(5)};   ///< initial per-layer backoff
    sim::Time join_timer_max{sim::Time::seconds(600)}; ///< backoff ceiling
    double backoff_multiplier{2.0};                ///< growth after each failed experiment
    sim::Time start{sim::Time::zero()};
  };

  ReceiverDrivenController(sim::Simulation& simulation, Config config);

  control::ReceiverAgent* register_receiver(transport::ReceiverEndpoint& endpoint) override;

  /// No control plane: all timers are per-receiver.
  void start() override {}

  /// Schedules each receiver's first decision tick (start + period + a random
  /// phase from the receiver's own stream, so receivers never tick in
  /// lockstep).
  void start_receiver_policies() override;

  /// While disabled, ticks keep their cadence but make no decisions
  /// (adaptation freeze — there is no central process to "die" here).
  void set_enabled(bool enabled) override;
  [[nodiscard]] bool enabled() const override { return enabled_; }

  [[nodiscard]] control::ControllerStats stats() const override;

  [[nodiscard]] std::uint64_t layers_added() const;
  [[nodiscard]] std::uint64_t layers_dropped() const;

 private:
  struct Receiver {
    transport::ReceiverEndpoint* endpoint{nullptr};
    sim::Rng rng{0};  ///< replaced with the receiver's own stream at register
    std::vector<sim::Time> join_not_before;  ///< per layer (1-based index-1)
    std::vector<sim::Time> join_timer;       ///< current backoff per layer
    int clean_intervals{0};
    int last_added_layer{0};                 ///< layer under experiment (0 = none)
    sim::Time experiment_deadline{};
    std::uint64_t adds{0};
    std::uint64_t drops{0};
  };

  void tick(std::size_t index);

  sim::Simulation& simulation_;
  Config config_;
  /// unique_ptr per receiver: tick() callbacks capture the Receiver*, which
  /// must stay stable while registration keeps appending.
  std::vector<std::unique_ptr<Receiver>> receivers_;
  bool enabled_{true};
  std::uint64_t outages_{0};
};

}  // namespace tsim::baseline
