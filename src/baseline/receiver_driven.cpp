#include "baseline/receiver_driven.hpp"

#include <algorithm>
#include <string>

namespace tsim::baseline {

ReceiverDrivenController::ReceiverDrivenController(sim::Simulation& simulation,
                                                   transport::ReceiverEndpoint& endpoint,
                                                   Config config)
    : simulation_{simulation},
      endpoint_{endpoint},
      config_{config},
      rng_{simulation.rng_stream("rlm/" + std::to_string(endpoint.config().node) + "/" +
                                 std::to_string(endpoint.config().session))},
      join_not_before_(static_cast<std::size_t>(endpoint.config().layers.num_layers),
                       sim::Time::zero()),
      join_timer_(static_cast<std::size_t>(endpoint.config().layers.num_layers),
                  config.join_timer_min) {}

void ReceiverDrivenController::start() {
  // Random phase so independent receivers do not tick in lockstep.
  const sim::Time phase = sim::Time::seconds(rng_.uniform(0.0, config_.period.as_seconds()));
  simulation_.at(config_.start + config_.period + phase, [this]() { tick(); });
}

void ReceiverDrivenController::tick() {
  const sim::Time now = simulation_.now();
  const auto& window = endpoint_.last_completed_window();
  const double loss = window.loss_rate().value();
  const int sub = endpoint_.subscription();

  if (loss > config_.drop_loss) {
    clean_intervals_ = 0;
    if (last_added_layer_ == sub && sub > 1 && now <= experiment_deadline_) {
      // Failed join experiment: drop back and back the layer's timer off.
      const std::size_t idx = static_cast<std::size_t>(sub - 1);
      join_timer_[idx] = std::min(
          sim::Time::seconds(join_timer_[idx].as_seconds() * config_.backoff_multiplier),
          config_.join_timer_max);
      join_not_before_[idx] = now + join_timer_[idx];
      endpoint_.set_subscription(sub - 1);
      ++drops_;
    } else if (sub > 1) {
      // Sustained congestion at the current level.
      endpoint_.set_subscription(sub - 1);
      const std::size_t idx = static_cast<std::size_t>(sub - 1);
      join_not_before_[idx] = now + join_timer_[idx];
      ++drops_;
    }
    last_added_layer_ = 0;
  } else {
    if (loss <= config_.add_loss) {
      ++clean_intervals_;
    } else {
      clean_intervals_ = 0;
    }
    if (last_added_layer_ == sub && now > experiment_deadline_) {
      // Experiment survived: the layer is considered safe; relax its timer.
      join_timer_[static_cast<std::size_t>(sub - 1)] = config_.join_timer_min;
      last_added_layer_ = 0;
    }
    const int next = sub + 1;
    if (clean_intervals_ >= config_.stable_intervals && next <= endpoint_.config().layers.num_layers &&
        now >= join_not_before_[static_cast<std::size_t>(next - 1)]) {
      endpoint_.set_subscription(next);
      ++adds_;
      last_added_layer_ = next;
      experiment_deadline_ = now + config_.period * 2;
      clean_intervals_ = 0;
    }
  }

  simulation_.after(config_.period, [this]() { tick(); });
}

}  // namespace tsim::baseline
