#include "baseline/receiver_driven.hpp"

#include <algorithm>
#include <memory>
#include <string>

namespace tsim::baseline {

ReceiverDrivenController::ReceiverDrivenController(sim::Simulation& simulation, Config config)
    : simulation_{simulation}, config_{config} {}

control::ReceiverAgent* ReceiverDrivenController::register_receiver(
    transport::ReceiverEndpoint& endpoint) {
  auto r = std::make_unique<Receiver>();
  r->endpoint = &endpoint;
  r->rng = simulation_.rng_stream("rlm/" + std::to_string(endpoint.config().node) + "/" +
                                  std::to_string(endpoint.config().session));
  const auto layers = static_cast<std::size_t>(endpoint.config().layers.num_layers);
  r->join_not_before.assign(layers, sim::Time::zero());
  r->join_timer.assign(layers, config_.join_timer_min);
  receivers_.push_back(std::move(r));
  return nullptr;
}

void ReceiverDrivenController::start_receiver_policies() {
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    // Random phase so independent receivers do not tick in lockstep.
    const sim::Time phase =
        sim::Time::seconds(receivers_[i]->rng.uniform(0.0, config_.period.as_seconds()));
    simulation_.at(config_.start + config_.period + phase, [this, i]() { tick(i); });
  }
}

void ReceiverDrivenController::set_enabled(bool enabled) {
  if (enabled == enabled_) return;
  enabled_ = enabled;
  if (!enabled_) ++outages_;
}

control::ControllerStats ReceiverDrivenController::stats() const {
  control::ControllerStats s;
  s.outages = outages_;
  s.layers_added = layers_added();
  s.layers_dropped = layers_dropped();
  return s;
}

std::uint64_t ReceiverDrivenController::layers_added() const {
  std::uint64_t n = 0;
  for (const auto& r : receivers_) n += r->adds;
  return n;
}

std::uint64_t ReceiverDrivenController::layers_dropped() const {
  std::uint64_t n = 0;
  for (const auto& r : receivers_) n += r->drops;
  return n;
}

void ReceiverDrivenController::tick(std::size_t index) {
  Receiver& r = *receivers_[index];
  const sim::Time now = simulation_.now();
  if (!enabled_) {
    // Frozen: keep the cadence so a re-enable resumes without rescheduling.
    simulation_.after(config_.period, [this, index]() { tick(index); });
    return;
  }
  const auto& window = r.endpoint->last_completed_window();
  const double loss = window.loss_rate().value();
  const int sub = r.endpoint->subscription();

  if (loss > config_.drop_loss) {
    r.clean_intervals = 0;
    if (r.last_added_layer == sub && sub > 1 && now <= r.experiment_deadline) {
      // Failed join experiment: drop back and back the layer's timer off.
      const std::size_t idx = static_cast<std::size_t>(sub - 1);
      r.join_timer[idx] = std::min(
          sim::Time::seconds(r.join_timer[idx].as_seconds() * config_.backoff_multiplier),
          config_.join_timer_max);
      r.join_not_before[idx] = now + r.join_timer[idx];
      r.endpoint->set_subscription(sub - 1);
      ++r.drops;
    } else if (sub > 1) {
      // Sustained congestion at the current level.
      r.endpoint->set_subscription(sub - 1);
      const std::size_t idx = static_cast<std::size_t>(sub - 1);
      r.join_not_before[idx] = now + r.join_timer[idx];
      ++r.drops;
    }
    r.last_added_layer = 0;
  } else {
    if (loss <= config_.add_loss) {
      ++r.clean_intervals;
    } else {
      r.clean_intervals = 0;
    }
    if (r.last_added_layer == sub && now > r.experiment_deadline) {
      // Experiment survived: the layer is considered safe; relax its timer.
      r.join_timer[static_cast<std::size_t>(sub - 1)] = config_.join_timer_min;
      r.last_added_layer = 0;
    }
    const int next = sub + 1;
    if (r.clean_intervals >= config_.stable_intervals &&
        next <= r.endpoint->config().layers.num_layers &&
        now >= r.join_not_before[static_cast<std::size_t>(next - 1)]) {
      r.endpoint->set_subscription(next);
      ++r.adds;
      r.last_added_layer = next;
      r.experiment_deadline = now + config_.period * 2;
      r.clean_intervals = 0;
    }
  }

  simulation_.after(config_.period, [this, index]() { tick(index); });
}

}  // namespace tsim::baseline
