// Competing sessions (the paper's Topology B): several independent layered
// video sessions squeeze through one shared link. Compares TopoSense with the
// receiver-driven baseline on the same topology and seed, printing the
// per-session outcome side by side — the paper's central "topology
// information buys coordination" argument, as a runnable demo.
#include <cstdio>
#include <memory>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

namespace {

struct Outcome {
  double mean_dev;
  int total_changes;
  double mean_loss;
};

Outcome run(tsim::scenarios::ControllerKind kind, int sessions) {
  using namespace tsim;
  using sim::Time;

  scenarios::ScenarioConfig config;
  config.seed = 99;
  config.traffic.model = traffic::TrafficModel::kVbr;
  config.traffic.peak_to_mean = 3.0;
  config.duration = Time::seconds(300);
  config.control.kind = kind;

  scenarios::TopologyBOptions topology;
  topology.sessions = sessions;

  auto scenario = scenarios::ScenarioBuilder(config).topology_b(topology).build();
  scenario->run();

  Outcome out{0.0, 0, 0.0};
  for (const auto& r : scenario->results()) {
    out.mean_dev +=
        r.timeline.relative_deviation(r.optimal, Time::seconds(150), config.duration);
    out.total_changes += r.timeline.change_count(Time::zero(), config.duration);
    out.mean_loss += r.loss_overall;
  }
  const double n = static_cast<double>(scenario->results().size());
  out.mean_dev /= n;
  out.mean_loss /= n;
  return out;
}

}  // namespace

int main() {
  constexpr int kSessions = 4;
  std::printf("competing sessions: %d VBR sessions share one %d Kbps link\n",
              kSessions, kSessions * 500);
  std::printf("(each session can ideally hold 4 layers = 480 Kbps)\n\n");

  const Outcome topo = run(tsim::scenarios::ControllerKind::kTopoSense, kSessions);
  const Outcome rlm = run(tsim::scenarios::ControllerKind::kReceiverDriven, kSessions);

  std::printf("%-18s %16s %14s %10s\n", "scheme", "mean dev [150,300]", "total changes",
              "mean loss");
  std::printf("%-18s %16.3f %14d %9.2f%%\n", "TopoSense", topo.mean_dev, topo.total_changes,
              100.0 * topo.mean_loss);
  std::printf("%-18s %16.3f %14d %9.2f%%\n", "receiver-driven", rlm.mean_dev,
              rlm.total_changes, 100.0 * rlm.mean_loss);
  std::printf(
      "\nTopoSense coordinates the sessions through the controller's shared\n"
      "view of the bottleneck; the receiver-driven baseline discovers it\n"
      "through repeated independent join experiments.\n");
  return 0;
}
