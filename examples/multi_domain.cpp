// Multiple administrative domains (paper §II, Fig 3): each domain runs its
// own controller agent over a domain-scoped topology view; domains are
// mutually unaware and control congestion independently on their subtrees.
//
// Topology:
//   source -- core --(768 Kbps)-- d1 -- 2 receivers   (domain 1, controller at d1)
//                  \-(1.5 Mbps)-- d2 -- 2 receivers   (domain 2, controller at d2)
#include <cstdio>
#include <memory>
#include <vector>

#include "control/controller_agent.hpp"
#include "control/receiver_agent.hpp"
#include "mcast/multicast_router.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "metrics/subscription_metrics.hpp"
#include "topo/discovery.hpp"
#include "traffic/layered_source.hpp"
#include "transport/demux.hpp"
#include "transport/receiver_endpoint.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  sim::Simulation simulation{404};
  net::Network network{simulation};
  mcast::MulticastRouter mcast{simulation, network};
  transport::DemuxRegistry demuxes{network};

  const auto source = network.add_node("source");
  const auto core = network.add_node("core");
  network.add_duplex_link(source, core, tsim::units::BitsPerSec{45e6}, Time::milliseconds(50), 100);

  struct Domain {
    net::NodeId router{};
    std::vector<net::NodeId> receivers;
    std::unique_ptr<topo::DiscoveryService> discovery;
    std::unique_ptr<control::ControllerAgent> controller;
    int optimal{};
  };
  std::vector<Domain> domains(2);
  const double domain_bps[2] = {768e3, 1.5e6};

  mcast.set_session_source(0, source);
  traffic::LayeredSource::Config scfg;
  scfg.session = 0;
  scfg.node = source;
  scfg.model = traffic::TrafficModel::kCbr;
  traffic::LayeredSource video{simulation, network, scfg};

  std::vector<std::unique_ptr<transport::ReceiverEndpoint>> endpoints;
  std::vector<std::unique_ptr<control::ReceiverAgent>> agents;
  std::vector<metrics::SubscriptionTimeline> timelines;
  core::Params params;

  for (int d = 0; d < 2; ++d) {
    Domain& domain = domains[d];
    domain.router = network.add_node("d" + std::to_string(d + 1));
    network.add_duplex_link(core, domain.router, tsim::units::BitsPerSec{domain_bps[d]}, Time::milliseconds(100), 50);
    domain.optimal = params.layers.max_layers_for_bandwidth(tsim::units::BitsPerSec{domain_bps[d]});
    for (int i = 0; i < 2; ++i) {
      const auto rcv = network.add_node("d" + std::to_string(d + 1) + "_r" + std::to_string(i));
      network.add_duplex_link(domain.router, rcv, tsim::units::BitsPerSec{10e6}, Time::milliseconds(20), 50);
      domain.receivers.push_back(rcv);
    }
  }
  network.compute_routes();

  for (int d = 0; d < 2; ++d) {
    Domain& domain = domains[d];

    // Domain-scoped discovery: this controller sees only its subtree.
    topo::DiscoveryService::Config dcfg;
    dcfg.domain_root = domain.router;
    dcfg.domain_nodes.insert(domain.router);
    for (const auto rcv : domain.receivers) dcfg.domain_nodes.insert(rcv);
    domain.discovery =
        std::make_unique<topo::DiscoveryService>(simulation, mcast, dcfg);

    control::ControllerAgent::Config ccfg;
    ccfg.node = domain.router;  // the controller lives on the border router
    domain.controller = std::make_unique<control::ControllerAgent>(
        simulation, network, *domain.discovery, demuxes.at(domain.router), ccfg);

    for (const auto rcv : domain.receivers) {
      transport::ReceiverEndpoint::Config ecfg;
      ecfg.node = rcv;
      ecfg.session = 0;
      ecfg.controller = domain.router;
      ecfg.report_period = ccfg.params.interval;
      endpoints.push_back(std::make_unique<transport::ReceiverEndpoint>(
          simulation, network, mcast, demuxes.at(rcv), ecfg));
      agents.push_back(std::make_unique<control::ReceiverAgent>(
          simulation, *endpoints.back(), control::ReceiverAgent::Config{}));
      domain.controller->register_receiver(0, rcv);
      timelines.emplace_back(Time::zero(), 0);
      const std::size_t slot = timelines.size() - 1;
      endpoints.back()->on_subscription_change(
          [&timelines, slot](Time when, int, int level) {
            timelines[slot].record(when, level);
          });
    }
    domain.discovery->start();
    domain.controller->start();
  }

  video.start();
  for (auto& e : endpoints) e->start();
  for (auto& a : agents) a->start();

  std::printf("two independent domain controllers, one session\n\n");
  simulation.run_until(Time::seconds(240));

  // Time-averaged level over the settled tail beats an instantaneous
  // snapshot (a receiver may be mid-probe at the horizon).
  auto mean_level = [&](std::size_t slot) {
    double level = 0.0;
    for (int l = 0; l <= params.layers.num_layers; ++l) {
      level += l * timelines[slot].time_at_level_fraction(l, Time::seconds(120),
                                                          Time::seconds(240));
    }
    return level;
  };
  std::printf("%-8s %10s %12s %12s %16s\n", "domain", "optimal", "mean(rcv0)", "mean(rcv1)",
              "controller runs");
  std::size_t e = 0;
  for (int d = 0; d < 2; ++d) {
    std::printf("d%-7d %10d %12.2f %12.2f %16llu\n", d + 1, domains[d].optimal,
                mean_level(e), mean_level(e + 1),
                static_cast<unsigned long long>(domains[d].controller->intervals_run()));
    e += 2;
  }
  std::printf(
      "\neach controller converges its own domain to that domain's bottleneck\n"
      "optimum; neither ever saw the other's subtree (Fig 3 scalability).\n");
  return 0;
}
