// Link failure and recovery — the fault-injection walkthrough.
//
// Topology A's bottleneck 1 (the 256 kbps branch) goes hard-down for a
// minute mid-run. During the outage set 1's receivers hear neither data nor
// suggestions: the watchdog kicks in and sheds layers unilaterally. After the
// repair the multicast tree re-grafts and the controller steers them back to
// their optimum; the example reports each receiver's recovery time and writes
// a per-second CSV (subscription levels + fault state) for plotting.
//
// Usage: link_failure [out.csv]
#include <cstdio>
#include <string>

#include <functional>

#include "fault/fault_plan.hpp"
#include "metrics/recovery.hpp"
#include "metrics/trace_writer.hpp"
#include "scenarios/scenario_builder.hpp"

int main(int argc, char** argv) {
  using namespace tsim;
  using sim::Time;

  const Time down_at = Time::seconds(120);
  const Time up_at = Time::seconds(180);

  scenarios::ScenarioConfig config;
  config.seed = 42;
  config.duration = Time::seconds(360);

  fault::FaultPlan plan;
  plan.link_outage("r0", "r1", down_at, up_at);

  auto scenario = scenarios::ScenarioBuilder(config)
                      .topology_a(scenarios::TopologyAOptions{})
                      .with_faults(plan)
                      .build();

  // Sample every receiver's subscription once a second, plus the fault state.
  std::vector<std::string> columns;
  for (const auto& r : scenario->results()) columns.push_back(r.name);
  columns.push_back("bottleneck1_up");
  metrics::TraceWriter trace{columns};
  std::function<void()> sample = [&]() {
    std::vector<double> row;
    for (const auto& e : scenario->endpoints()) row.push_back(e->subscription());
    const Time now = scenario->simulation().now();
    row.push_back(now >= down_at && now < up_at ? 0.0 : 1.0);
    trace.add_row(now, row);
    scenario->simulation().after(Time::seconds(1), sample);
  };
  scenario->simulation().at(Time::zero(), sample);

  scenario->run();

  std::printf("link_failure: bottleneck1 down [%.0f, %.0f) s of %.0f s\n\n",
              down_at.as_seconds(), up_at.as_seconds(), config.duration.as_seconds());
  std::printf("%-10s %8s %6s %11s %11s %12s %12s\n", "receiver", "optimal", "final",
              "unilateral", "max gap[s]", "recovery[s]", "loss");
  const auto& agents = scenario->receiver_agents();
  for (std::size_t i = 0; i < scenario->results().size(); ++i) {
    const auto& r = scenario->results()[i];
    metrics::RecoveryConfig rcfg;
    rcfg.repair = up_at;
    rcfg.target = r.optimal;
    rcfg.tolerance = 1;
    rcfg.until = config.duration;
    const auto recovery = metrics::recovery_time(r.timeline, rcfg);
    char recovery_s[32];
    if (recovery) {
      std::snprintf(recovery_s, sizeof recovery_s, "%.1f", recovery->as_seconds());
    } else {
      std::snprintf(recovery_s, sizeof recovery_s, "never");
    }
    std::printf("%-10s %8d %6d %9llu+%llu- %11.1f %12s %11.2f%%\n", r.name.c_str(), r.optimal,
                r.final_subscription,
                static_cast<unsigned long long>(agents[i]->unilateral_adds()),
                static_cast<unsigned long long>(agents[i]->unilateral_drops()),
                agents[i]->max_suggestion_gap().as_seconds(), recovery_s,
                100.0 * r.loss_overall);
  }

  const auto& stats = scenario->fault_injectors().front()->stats();
  std::printf("\nfault injector: %llu down / %llu up transitions\n",
              static_cast<unsigned long long>(stats.link_down_transitions),
              static_cast<unsigned long long>(stats.link_up_transitions));

  if (argc > 1) {
    if (trace.write_file(argv[1])) {
      std::printf("trace written to %s (%zu rows)\n", argv[1], trace.rows());
    } else {
      std::fprintf(stderr, "error: cannot write '%s'\n", argv[1]);
      return 1;
    }
  }
  return 0;
}
