// Heterogeneous receivers (the paper's §I motivation): one session, two
// receiver populations behind very different bottlenecks — a 56K-modem-class
// set and a broadband set — plus a middle tier. Shows that TopoSense gives
// each subtree its own optimum instead of degrading everyone to the weakest
// receiver.
//
// This example builds a custom topology directly against the substrate API
// (Network/MulticastRouter/...) rather than using the canned Scenario
// factories, demonstrating the lower-level public surface.
#include <cstdio>
#include <memory>
#include <vector>

#include "control/controller_agent.hpp"
#include "control/receiver_agent.hpp"
#include "mcast/multicast_router.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"
#include "topo/discovery.hpp"
#include "traffic/layered_source.hpp"
#include "transport/demux.hpp"
#include "transport/receiver_endpoint.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  sim::Simulation simulation{2024};
  net::Network network{simulation};
  mcast::MulticastRouter mcast{simulation, network, {Time::zero(), Time::seconds(1)}};
  transport::DemuxRegistry demuxes{network};

  // Tiers: source -> national -> regional x3 -> receivers.
  const auto source = network.add_node("source");
  const auto national = network.add_node("national");
  network.add_duplex_link(source, national, tsim::units::BitsPerSec{45e6}, Time::milliseconds(50), 50);

  struct Tier {
    const char* name;
    double bps;
    int receivers;
  };
  const std::vector<Tier> tiers = {
      {"modem", 64e3, 2},       // ~1 layer
      {"dsl", 640e3, 3},        // ~4 layers
      {"broadband", 2.5e6, 2},  // all 6 layers
  };

  mcast.set_session_source(0, source);
  traffic::LayeredSource::Config scfg;
  scfg.session = 0;
  scfg.node = source;
  scfg.model = traffic::TrafficModel::kVbr;
  scfg.peak_to_mean = 3.0;
  traffic::LayeredSource video{simulation, network, scfg};

  topo::DiscoveryService discovery{simulation, mcast, {Time::seconds(1), Time::zero(), 64}};
  control::ControllerAgent::Config ccfg;
  ccfg.node = source;
  control::ControllerAgent controller{simulation, network, discovery, demuxes.at(source), ccfg};

  std::vector<std::unique_ptr<transport::ReceiverEndpoint>> endpoints;
  std::vector<std::unique_ptr<control::ReceiverAgent>> agents;
  std::vector<std::string> names;
  std::vector<int> optima;

  for (const Tier& tier : tiers) {
    const auto hub = network.add_node(std::string{tier.name} + "_hub");
    network.add_duplex_link(national, hub, tsim::units::BitsPerSec{tier.bps}, Time::milliseconds(100), 30);
    for (int i = 0; i < tier.receivers; ++i) {
      const auto rcv = network.add_node(std::string{tier.name} + std::to_string(i));
      network.add_duplex_link(hub, rcv, tsim::units::BitsPerSec{10e6}, Time::milliseconds(20), 30);

      transport::ReceiverEndpoint::Config ecfg;
      ecfg.node = rcv;
      ecfg.session = 0;
      ecfg.controller = source;
      ecfg.report_period = ccfg.params.interval;
      endpoints.push_back(std::make_unique<transport::ReceiverEndpoint>(
          simulation, network, mcast, demuxes.at(rcv), ecfg));
      agents.push_back(std::make_unique<control::ReceiverAgent>(
          simulation, *endpoints.back(), control::ReceiverAgent::Config{}));
      controller.register_receiver(0, rcv);
      names.push_back(std::string{tier.name} + std::to_string(i));
      optima.push_back(ccfg.params.layers.max_layers_for_bandwidth(tsim::units::BitsPerSec{tier.bps}));
    }
  }

  network.compute_routes();
  discovery.start();
  controller.start();
  video.start();
  for (auto& e : endpoints) e->start();
  for (auto& a : agents) a->start();

  std::printf("heterogeneous receivers: 3 tiers behind one session\n\n");
  std::printf("%-12s %8s %8s %10s\n", "receiver", "optimal", "final", "loss");
  simulation.run_until(Time::seconds(240));

  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    std::printf("%-12s %8d %8d %9.2f%%\n", names[i].c_str(), optima[i],
                endpoints[i]->subscription(), 100.0 * endpoints[i]->lifetime_loss_rate().value());
  }
  std::printf(
      "\nNote how each tier settles near its own bottleneck's optimum —\n"
      "the modem tier does not drag the broadband tier down.\n");
  return 0;
}
