// Trace export: run a short Topology B scenario and write
//   toposense_trace.csv   — per-second subscription + loss per session
//   toposense_topology.dot — the network graph with session 0's tree
//                            highlighted (render with `dot -Tpng`)
// into the current directory. Demonstrates the TraceWriter, LinkMonitor and
// DOT-export utilities for users who want to plot runs externally.
#include <cstdio>
#include <functional>

#include "metrics/link_monitor.hpp"
#include "metrics/trace_writer.hpp"
#include "net/dot_export.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  scenarios::ScenarioConfig config;
  config.seed = 7;
  config.traffic.model = traffic::TrafficModel::kVbr;
  config.traffic.peak_to_mean = 3.0;
  config.duration = Time::seconds(180);

  scenarios::TopologyBOptions topology;
  topology.sessions = 3;

  auto scenario = scenarios::ScenarioBuilder(config).topology_b(topology).build();

  metrics::TraceWriter trace{{"sub_s0", "sub_s1", "sub_s2", "loss_s0", "loss_s1", "loss_s2",
                              "shared_link_util"}};
  metrics::LinkMonitor monitor{scenario->simulation(), scenario->network(), 0,
                               Time::seconds(1)};
  monitor.start();

  std::function<void()> sample = [&]() {
    const auto& endpoints = scenario->endpoints();
    std::vector<double> row;
    for (int k = 0; k < 3; ++k) row.push_back(endpoints[k]->subscription());
    for (int k = 0; k < 3; ++k) {
      row.push_back(endpoints[k]->last_completed_window().loss_rate().value());
    }
    row.push_back(monitor.samples().empty()
                      ? 0.0
                      : monitor.samples().back().throughput /
                            scenario->network().link(0).bandwidth());
    trace.add_row(scenario->simulation().now(), row);
    scenario->simulation().after(Time::seconds(1), sample);
  };
  scenario->simulation().at(Time::seconds(1), sample);

  scenario->run();

  const bool csv_ok = trace.write_file("toposense_trace.csv");
  std::printf("wrote toposense_trace.csv (%zu rows): %s\n", trace.rows(),
              csv_ok ? "ok" : "FAILED");

  // Highlight session 0's current tree in the topology graph.
  const auto edges = scenario->multicast().session_tree_edges(0, 6);
  const std::string dot = net::to_dot(scenario->network(), edges);
  std::FILE* f = std::fopen("toposense_topology.dot", "w");
  if (f != nullptr) {
    std::fwrite(dot.data(), 1, dot.size(), f);
    std::fclose(f);
    std::printf("wrote toposense_topology.dot (render: dot -Tpng -O toposense_topology.dot)\n");
  }

  std::printf("shared link mean utilization: %.1f%%\n", 100.0 * monitor.mean_utilization());
  return 0;
}
