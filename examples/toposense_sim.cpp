// toposense_sim — command-line simulator driver: run TopoSense over any
// topology described in the line-based topology language (see
// src/scenarios/topology_file.hpp for the grammar).
//
// Usage:
//   toposense_sim                     # runs a built-in sample topology
//   toposense_sim my_topology.txt    # runs a topology file
//   toposense_sim file.txt 600 vbr3  # duration [s] and traffic model
//                                      (cbr | vbr3 | vbr6)
//   toposense_sim --audit[=MODE] ... # invariant auditing: off | log | assert
//                                      (bare --audit means log). Violations
//                                      are printed as a JSON report and make
//                                      the exit code non-zero.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/topology_file.hpp"

namespace {

constexpr const char* kSampleTopology = R"(# Built-in sample: one session, two domains with different bottlenecks,
# and a second session competing on the tighter branch.
node src0
node src1
node core
node west
node east
node w0
node w1
node e0

link src0 core 45Mbps 50ms
link src1 core 45Mbps 50ms
link core west 640kbps 100ms
link core east 2Mbps 100ms
link west w0 10Mbps 20ms
link west w1 10Mbps 20ms
link east e0 10Mbps 20ms

source 0 src0
source 1 src1

receiver w0 0
receiver w1 1 start 60
receiver e0 0

controller src0
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace tsim;
  using sim::Time;

  check::AuditConfig audit;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg == "--audit") {
      audit.mode = check::AuditMode::kLog;
    } else if (arg.rfind("--audit=", 0) == 0) {
      const std::string value{arg.substr(std::strlen("--audit="))};
      const auto mode = check::parse_audit_mode(value);
      if (!mode) {
        std::fprintf(stderr, "error: bad --audit mode '%s' (off | log | assert)\n",
                     value.c_str());
        return 2;
      }
      audit.mode = *mode;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }

  std::string text = kSampleTopology;
  std::string source_name = "<built-in sample>";
  if (!positional.empty()) {
    std::ifstream file{positional[0]};
    if (!file) {
      std::fprintf(stderr, "error: cannot open '%s'\n", positional[0]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
    source_name = positional[0];
  }

  const auto parsed = scenarios::parse_topology(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", source_name.c_str(), parsed.error.c_str());
    return 1;
  }

  scenarios::ScenarioConfig config;
  config.seed = 1;
  config.audit = audit;
  config.duration =
      Time::seconds(std::int64_t{positional.size() > 1 ? std::atol(positional[1]) : 300});
  if (positional.size() > 2) {
    if (std::strcmp(positional[2], "vbr3") == 0) {
      config.traffic.model = traffic::TrafficModel::kVbr;
      config.traffic.peak_to_mean = 3.0;
    } else if (std::strcmp(positional[2], "vbr6") == 0) {
      config.traffic.model = traffic::TrafficModel::kVbr;
      config.traffic.peak_to_mean = 6.0;
    }
  }

  std::printf("toposense_sim: %s, %.0f s, %s\n\n", source_name.c_str(),
              config.duration.as_seconds(),
              config.traffic.model == traffic::TrafficModel::kCbr
                  ? "CBR"
                  : (config.traffic.peak_to_mean > 4 ? "VBR(P=6)" : "VBR(P=3)"));

  if (!parsed.description->faults.empty()) {
    std::printf("fault plan (%zu events):\n%s\n", parsed.description->faults.size(),
                parsed.description->faults.summary().c_str());
  }

  auto scenario = scenarios::Scenario::from_description(config, *parsed.description);
  try {
    scenario->run();
  } catch (const check::AuditError& e) {
    std::fprintf(stderr, "audit failure: %s\n", e.what());
    if (scenario->auditor() != nullptr) {
      std::printf("%s\n", scenario->auditor()->report_json().c_str());
    }
    return 3;
  }

  const Time tail_from = Time::seconds(config.duration.as_seconds() / 2.0);
  std::printf("%-14s %8s %12s %10s %14s %10s\n", "receiver", "optimal", "mean level",
              "changes", "dev (tail)", "loss");
  for (const auto& r : scenario->results()) {
    double mean = 0.0;
    for (int level = 0; level <= config.params.layers.num_layers; ++level) {
      mean += level * r.timeline.time_at_level_fraction(level, tail_from, config.duration);
    }
    std::printf("%-14s %8d %12.2f %10d %14.3f %9.2f%%\n", r.name.c_str(), r.optimal, mean,
                r.timeline.change_count(sim::Time::zero(), config.duration),
                r.optimal > 0
                    ? r.timeline.relative_deviation(r.optimal, tail_from, config.duration)
                    : 0.0,
                100.0 * r.loss_overall);
  }
  control::DomainManager* domains = scenario->domains();
  if (domains != nullptr && domains->domain_count() > 1) {
    // Partitioned run: every domain has its own controller, and the
    // root typically hears summaries rather than raw receiver reports.
    for (std::size_t d = 0; d < domains->domain_count(); ++d) {
      const control::ControllerAgent* agent = domains->agent(d);
      if (agent == nullptr) continue;
      std::printf("%scontroller[%s]: %llu reports in, %llu suggestions out\n",
                  d == 0 ? "\n" : "", domains->domain(d).name.c_str(),
                  static_cast<unsigned long long>(agent->reports_received()),
                  static_cast<unsigned long long>(agent->suggestions_sent()));
    }
    std::printf("domains: %llu summaries sent, %llu received; "
                "%llu caps sent, %llu received\n",
                static_cast<unsigned long long>(domains->summaries_sent()),
                static_cast<unsigned long long>(domains->summaries_received()),
                static_cast<unsigned long long>(domains->caps_sent()),
                static_cast<unsigned long long>(domains->caps_received()));
  } else {
    std::printf("\ncontroller: %llu reports in, %llu suggestions out\n",
                static_cast<unsigned long long>(scenario->controller()->reports_received()),
                static_cast<unsigned long long>(scenario->controller()->suggestions_sent()));
  }

  if (!scenario->fault_injectors().empty()) {
    std::uint64_t downs = 0;
    std::uint64_t ups = 0;
    std::uint64_t outages = 0;
    std::uint64_t sugg_dropped = 0;
    for (const auto& injector : scenario->fault_injectors()) {
      downs += injector->stats().link_down_transitions;
      ups += injector->stats().link_up_transitions;
      outages += injector->stats().controller_outages;
      sugg_dropped += injector->stats().suggestions_dropped;
    }
    std::printf(
        "faults: %llu link-down / %llu link-up transitions, %llu controller outages, "
        "%llu suggestions dropped\n",
        static_cast<unsigned long long>(downs), static_cast<unsigned long long>(ups),
        static_cast<unsigned long long>(outages), static_cast<unsigned long long>(sugg_dropped));
    std::printf("%-14s %16s %18s %20s\n", "receiver", "unilateral", "max sugg gap[s]",
                "blind time[s]");
    const auto& agents = scenario->receiver_agents();
    for (std::size_t i = 0; i < agents.size() && i < scenario->results().size(); ++i) {
      std::printf("%-14s %10llu+%llu- %18.1f %20.1f\n", scenario->results()[i].name.c_str(),
                  static_cast<unsigned long long>(agents[i]->unilateral_adds()),
                  static_cast<unsigned long long>(agents[i]->unilateral_drops()),
                  agents[i]->max_suggestion_gap().as_seconds(),
                  agents[i]->suggestion_gap_time().as_seconds());
    }
  }

  if (const check::InvariantAuditor* auditor = scenario->auditor(); auditor != nullptr) {
    std::printf("\naudit: mode=%s, %llu checks run, %llu violation(s)\n%s\n",
                check::audit_mode_name(auditor->mode()),
                static_cast<unsigned long long>(auditor->checks_run()),
                static_cast<unsigned long long>(auditor->violation_count()),
                auditor->report_json().c_str());
    if (auditor->violation_count() > 0) return 3;
  }
  return 0;
}
