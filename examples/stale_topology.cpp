// Stale topology information (the paper's Fig 10 theme as a demo): run the
// same heterogeneous scenario with increasingly old topology/loss snapshots
// and watch the deviation from optimal grow — then note that it degrades
// gracefully rather than collapsing.
#include <cstdio>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  std::printf("impact of stale information on Topology A (VBR, P=3)\n\n");
  std::printf("%12s %18s %14s\n", "staleness[s]", "mean dev [100,300]", "total changes");

  for (const int staleness_s : {0, 2, 4, 8, 12}) {
    scenarios::ScenarioConfig config;
    config.seed = 31;
    config.traffic.model = traffic::TrafficModel::kVbr;
    config.traffic.peak_to_mean = 3.0;
    config.duration = Time::seconds(300);
    config.control.info_staleness = Time::seconds(staleness_s);

    auto scenario = scenarios::ScenarioBuilder(config).topology_a(scenarios::TopologyAOptions{}).build();
    scenario->run();

    double dev = 0.0;
    int changes = 0;
    for (const auto& r : scenario->results()) {
      dev += r.timeline.relative_deviation(r.optimal, Time::seconds(100), config.duration);
      changes += r.timeline.change_count(Time::zero(), config.duration);
    }
    std::printf("%12d %18.3f %14d\n", staleness_s,
                dev / static_cast<double>(scenario->results().size()), changes);
  }

  std::printf(
      "\nThe controller keeps working with information several seconds old —\n"
      "well beyond the 600 ms discovery latency of this topology.\n");
  return 0;
}
