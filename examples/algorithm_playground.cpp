// Algorithm playground: drive the pure TopoSense core directly with a
// hand-built session tree — no simulator at all. Useful for studying what the
// decision table does interval by interval, and as a template for embedding
// the algorithm behind a real topology-discovery tool.
#include <cstdio>

#include "core/toposense.hpp"

namespace {

using namespace tsim;
using sim::Time;

core::SessionNodeInput router(net::NodeId id, net::NodeId parent) {
  core::SessionNodeInput n;
  n.node = id;
  n.parent = parent;
  return n;
}

core::SessionNodeInput receiver(net::NodeId id, net::NodeId parent, double loss,
                                std::uint64_t bytes, int sub) {
  core::SessionNodeInput n = router(id, parent);
  n.is_receiver = true;
  n.loss_rate = tsim::units::LossFraction{loss};
  n.bytes_received = tsim::units::Bytes{bytes};
  n.subscription = sub;
  return n;
}

}  // namespace

int main() {
  core::Params params;
  params.interval = Time::seconds(2);
  core::TopoSense algo{params, sim::Rng{1}};

  // The paper's Fig 1 tree: source 1, routers 2 and 5, receivers 3, 4 and 6.
  // Receiver 4 keeps over-subscribing; watch the controller rein the subtree
  // under router 2 in while receiver 6 keeps climbing.
  std::printf("interval |  rcv3 (shares bottleneck)  rcv4 (overreaches)  rcv6 (free)\n");
  std::printf("---------+----------------------------------------------------------\n");

  int sub3 = 1;
  int sub4 = 1;
  int sub6 = 1;
  Time now = params.interval;
  for (int interval = 1; interval <= 15; ++interval) {
    // Crude plant model: the subtree under router 2 holds 96 Kbps (2 layers);
    // subscriptions above that suffer loss proportional to the overreach.
    const double cap2 = params.layers.cumulative_rate(2).bps();
    auto plant = [&](int sub) {
      const double want = params.layers.cumulative_rate(sub).bps();
      const double loss = want > cap2 ? (want - cap2) / want : 0.0;
      const auto bytes =
          static_cast<std::uint64_t>(std::min(want, cap2) / 8.0 * params.interval.as_seconds());
      return std::pair{loss, bytes};
    };
    const auto [loss3, bytes3] = plant(sub3);
    const auto [loss4, bytes4] = plant(sub4);
    const auto bytes6 = static_cast<std::uint64_t>(
        params.layers.cumulative_rate(sub6).bps() / 8.0 * params.interval.as_seconds());

    core::AlgorithmInput in;
    in.window = params.interval;
    core::SessionInput session;
    session.session = 0;
    session.source = 1;
    session.nodes = {router(1, net::kInvalidNode), router(2, 1),
                     receiver(3, 2, loss3, bytes3, sub3),
                     receiver(4, 2, loss4, bytes4, sub4),
                     router(5, 1),
                     receiver(6, 5, 0.0, bytes6, sub6)};
    in.sessions.push_back(session);

    const core::AlgorithmOutput out = algo.run_interval(in, now);
    for (const auto& p : out.prescriptions) {
      if (p.receiver == 3) sub3 = p.subscription;
      if (p.receiver == 4) sub4 = p.subscription;
      if (p.receiver == 6) sub6 = p.subscription;
    }
    std::printf("%8d | %10d %19d %18d   (loss under r2: %.0f%%)\n", interval, sub3, sub4,
                sub6, 100.0 * std::max(loss3, loss4));
    now += params.interval;
  }

  std::printf(
      "\nreceivers 3 and 4 settle at the 2-layer optimum of their shared\n"
      "bottleneck; receiver 6 climbs to the full 6 layers unimpeded.\n");
  return 0;
}
