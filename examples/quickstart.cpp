// Quickstart: build the paper's Topology A, run TopoSense for two simulated
// minutes, and print what each receiver subscribed to.
//
// This is the smallest end-to-end use of the public API:
//   ScenarioConfig -> Scenario::topology_a -> run -> results().
#include <cstdio>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  scenarios::ScenarioConfig config;
  config.seed = 1;
  config.traffic.model = traffic::TrafficModel::kCbr;
  config.duration = Time::seconds(120);

  scenarios::TopologyAOptions topology;
  topology.receivers_per_set = 2;

  std::printf("TopoSense quickstart: Topology A, CBR, %d receivers per set\n",
              topology.receivers_per_set);
  std::printf("bottlenecks: %.0f Kbps (optimal 3 layers), %.0f Kbps (optimal 5 layers)\n\n",
              topology.bottleneck1_bps / 1e3, topology.bottleneck2_bps / 1e3);

  auto scenario = scenarios::ScenarioBuilder(config).topology_a(topology).build();
  scenario->run();

  std::printf("%-10s %8s %8s %8s %14s %12s\n", "receiver", "optimal", "final", "changes",
              "dev[60,120]s", "loss");
  for (const auto& r : scenario->results()) {
    std::printf("%-10s %8d %8d %8d %14.3f %11.2f%%\n", r.name.c_str(), r.optimal,
                r.final_subscription,
                r.timeline.change_count(Time::zero(), config.duration),
                r.timeline.relative_deviation(r.optimal, Time::seconds(60), config.duration),
                100.0 * r.loss_overall);
  }

  std::printf("\ncontroller: %llu reports in, %llu suggestions out, %llu intervals\n",
              static_cast<unsigned long long>(scenario->controller()->reports_received()),
              static_cast<unsigned long long>(scenario->controller()->suggestions_sent()),
              static_cast<unsigned long long>(scenario->controller()->intervals_run()));
  return 0;
}
