// Billing report (paper §II): the domain controller is naturally positioned
// to bill customers for multicast content delivered. Run a heterogeneous
// scenario for a few minutes and print each receiver's usage account and a
// two-part tariff charge — built from the very receiver reports the
// congestion algorithm consumes.
#include <cstdio>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  scenarios::ScenarioConfig config;
  config.seed = 77;
  config.traffic.model = traffic::TrafficModel::kVbr;
  config.traffic.peak_to_mean = 3.0;
  config.duration = Time::seconds(300);

  scenarios::TopologyAOptions topology;
  topology.receivers_per_set = 2;
  // One receiver per set leaves halfway through: their bill stops growing.
  topology.leave_fraction = 0.5;
  topology.leave_at = Time::seconds(150);

  auto scenario = scenarios::ScenarioBuilder(config).topology_a(topology).build();
  scenario->run();

  constexpr double kPerMegabyte = 0.05;   // volume part
  constexpr double kPerLayerHour = 0.40;  // quality part

  std::printf("usage accounts after %.0f s (tariff: $%.2f/MB + $%.2f/layer-hour)\n\n",
              config.duration.as_seconds(), kPerMegabyte, kPerLayerHour);
  std::printf("%-10s %10s %14s %14s %10s\n", "receiver", "reports", "megabytes",
              "layer-hours", "charge");

  const auto& ledger = scenario->controller()->ledger();
  for (std::size_t i = 0; i < scenario->results().size(); ++i) {
    const auto& r = scenario->results()[i];
    const auto account = ledger.account(r.session, r.node);
    std::printf("%-10s %10u %14.2f %14.3f %9.2f$\n", r.name.c_str(), account.reports,
                static_cast<double>(account.bytes.count()) / 1e6, account.layer_seconds / 3600.0,
                account.charge(kPerMegabyte, kPerLayerHour));
  }
  std::printf("\ntotal delivered (billed) volume: %.2f MB\n",
              static_cast<double>(ledger.total_bytes().count()) / 1e6);
  std::printf("note: set1/1 and set2/1 left at t=150 s — their accounts froze there.\n");
  return 0;
}
