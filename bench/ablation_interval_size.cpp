// Ablation — interval size (paper §V "Interval size").
//
// The algorithm period trades reaction time against inference quality:
// a short interval reacts fast but misreads bursts as congestion; a long one
// is stable but slow and serves stale decisions. Sweep the interval on
// Topology A with bursty traffic and report deviation + stability.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Ablation", "algorithm interval size, Topology A, VBR(P=3)");

  const std::vector<double> intervals_s =
      bench::quick_mode() ? std::vector<double>{1.0, 4.0} : std::vector<double>{0.5, 1.0, 2.0, 4.0, 8.0};

  std::printf("%-14s %18s %14s %14s\n", "interval[s]", "mean deviation", "total changes",
              "mean loss%%");
  for (const double interval : intervals_s) {
    scenarios::ScenarioConfig config;
    config.seed = 6001;
    config.traffic.model = traffic::TrafficModel::kVbr;
    config.traffic.peak_to_mean = 3.0;
    config.duration = bench::run_duration();
    config.params.interval = Time::seconds(interval);

    auto scenario = scenarios::ScenarioBuilder(config).topology_a(scenarios::TopologyAOptions{}).build();
    scenario->run();

    double dev = 0.0;
    int changes = 0;
    double loss = 0.0;
    for (const auto& r : scenario->results()) {
      dev += r.timeline.relative_deviation(r.optimal, Time::zero(), config.duration);
      changes += r.timeline.change_count(Time::zero(), config.duration);
      loss += r.loss_overall;
    }
    const double n = static_cast<double>(scenario->results().size());
    std::printf("%-14.1f %18.3f %14d %14.2f\n", interval, dev / n, changes,
                100.0 * loss / n);
  }
  std::printf("\nexpected: a sweet spot at a few seconds — very short intervals react to\n"
              "burst noise, very long ones converge slowly (higher early deviation).\n");
  return 0;
}
