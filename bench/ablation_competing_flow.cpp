// Ablation — transient non-conforming cross-traffic (paper §III: TopoSense
// "adapts to transient traffic and competing sessions"; §V: such flows can
// mislead the capacity estimator).
//
// A unicast CBR flow crosses Topology A's 256 Kbps bottleneck for the middle
// third of the run. Sweep its rate and measure the squeeze and the recovery.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Ablation", "competing non-conforming flow across bottleneck 1");

  const double duration_s = bench::run_duration().as_seconds();
  const Time cross_start = Time::seconds(duration_s / 3.0);
  const Time cross_stop = Time::seconds(2.0 * duration_s / 3.0);

  const std::vector<double> rates =
      bench::quick_mode() ? std::vector<double>{0.0, 128e3}
                          : std::vector<double>{0.0, 64e3, 128e3, 192e3};

  std::printf("flow active [%.0f, %.0f) s; set-1 optimal without flow: 3 layers\n\n",
              cross_start.as_seconds(), cross_stop.as_seconds());
  std::printf("%-12s %16s %16s %16s\n", "rate[Kbps]", "mean level (mid)", "mean level (end)",
              "set1 loss%%");
  for (const double rate : rates) {
    scenarios::ScenarioConfig config;
    config.seed = 6005;
    config.duration = bench::run_duration();
    scenarios::TopologyAOptions options;
    options.cross_traffic_bps = rate;
    options.cross_start = cross_start;
    options.cross_stop = cross_stop;

    auto scenario = scenarios::ScenarioBuilder(config).topology_a(options).build();
    scenario->run();

    // Mean subscription of set-1 receivers during the squeeze and after.
    auto mean_level = [&](Time from, Time to) {
      double level = 0.0;
      for (int i = 0; i < 2; ++i) {
        const auto& r = scenario->results()[i];
        for (int l = 0; l <= 6; ++l) {
          level += l * r.timeline.time_at_level_fraction(l, from, to);
        }
      }
      return level / 2.0;
    };
    const double mid = mean_level(cross_start + Time::seconds(30), cross_stop);
    const double end = mean_level(cross_stop + Time::seconds(30), config.duration);
    const double loss =
        (scenario->results()[0].loss_overall + scenario->results()[1].loss_overall) / 2.0;
    std::printf("%-12.0f %16.2f %16.2f %16.2f\n", rate / 1e3, mid, end, 100.0 * loss);
  }
  std::printf("\nexpected: the steady level steps down roughly one layer per halving of\n"
              "residual bandwidth while the flow runs, and recovers once it stops\n"
              "(the periodic capacity reset forgets the squeezed estimate).\n");
  return 0;
}
