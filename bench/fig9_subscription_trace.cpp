// Figure 9 — Layer subscription and loss history for 4 competing sessions
// with VBR traffic.
//
// The paper shows a sample time window with each session's subscription level
// and loss rate: sessions occasionally over-subscribe to layers 5/6 when the
// capacity estimate resets to infinity, take losses, and fall back to the
// 4-layer fair point. This bench prints the per-second trace for a window of
// the run plus summary occupancy statistics.
#include <cstdio>
#include <functional>
#include <vector>

#include "common.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Figure 9",
                      "subscription + loss trace, 4 competing VBR sessions (Topology B)");

  scenarios::ScenarioConfig config;
  config.seed = 4004;
  config.traffic.model = traffic::TrafficModel::kVbr;
  config.traffic.peak_to_mean = 3.0;
  config.duration = bench::run_duration();

  scenarios::TopologyBOptions topology;
  topology.sessions = 4;

  auto scenario = scenarios::ScenarioBuilder(config).topology_b(topology).build();

  // Per-second sampling of each receiver's subscription and window loss.
  struct Sample {
    int sub[4];
    double loss[4];
  };
  std::vector<Sample> trace;
  const auto& endpoints = scenario->endpoints();
  std::function<void()> sample = [&]() {
    Sample s{};
    for (int k = 0; k < 4; ++k) {
      s.sub[k] = endpoints[k]->subscription();
      s.loss[k] = endpoints[k]->last_completed_window().loss_rate().value();
    }
    trace.push_back(s);
    scenario->simulation().after(Time::seconds(1), sample);
  };
  scenario->simulation().at(Time::seconds(1), sample);

  scenario->run();

  // Print a 40 s window from the steady middle of the run (the paper shows a
  // 10 s zoom; a slightly wider window makes the over-subscription episodes
  // visible in text form).
  const std::size_t start = trace.size() / 2;
  const std::size_t end = std::min(trace.size(), start + 40);
  std::printf("%6s | %-23s | %s\n", "t[s]", "subscription s1..s4", "loss%% s1..s4");
  for (std::size_t i = start; i < end; ++i) {
    const Sample& s = trace[i];
    std::printf("%6zu | %3d %3d %3d %3d         | %5.1f %5.1f %5.1f %5.1f\n", i + 1,
                s.sub[0], s.sub[1], s.sub[2], s.sub[3], 100 * s.loss[0], 100 * s.loss[1],
                100 * s.loss[2], 100 * s.loss[3]);
  }

  // Occupancy summary over the second half (the paper's qualitative claims).
  std::printf("\nsecond-half occupancy per session (fraction of time at each level):\n");
  std::printf("%8s  %5s %5s %5s %5s %5s %5s\n", "session", "L1", "L2", "L3", "L4", "L5", "L6");
  const Time half = Time::seconds(config.duration.as_seconds() / 2.0);
  for (const auto& r : scenario->results()) {
    std::printf("%8s ", r.name.c_str());
    for (int level = 1; level <= 6; ++level) {
      std::printf(" %5.2f", r.timeline.time_at_level_fraction(level, half, config.duration));
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: sessions sit at 4 layers most of the time, with brief\n"
              "excursions to 5/6 after capacity re-estimation resets, which losses\n"
              "quickly correct.\n");
  return 0;
}
