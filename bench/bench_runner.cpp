// Machine-readable performance harness: runs the control-interval kernel and
// one end-to-end scenario with fixed seeds and writes BENCH_kernel.json /
// BENCH_e2e.json so successive PRs accumulate a comparable perf trajectory
// (see docs/benchmarking.md for the schema and how to compare runs).
//
// Usage: bench_runner [--out DIR] [--fault] [--audit] [--scale] [--e2e] [--quick]
//                     [--shard-smoke]
//   --out DIR   directory for the JSON files (default: current directory)
//   --fault     run the fault-injection scenarios instead and write
//               BENCH_fault.json (outage recovery + determinism check)
//   --audit     additionally run each kernel case with log-mode invariant
//               auditing and record the throughput overhead in
//               BENCH_kernel.json (budget: <= 15%, see docs/invariants.md).
//               Baseline and audited walls are medians of 3 repetitions so
//               the overhead percentage is not scheduler-jitter noise.
//   --scale     run the scale tier instead and write BENCH_scale.json:
//               a 10k-receiver star fan-out, a ~1k-receiver tiered
//               closed-loop scenario, and a multi-seed sweep running
//               independent simulations on a thread pool (one Scheduler per
//               sim; per-seed fingerprints must be stable across reruns)
//   --e2e       run only the end-to-end case and write BENCH_e2e.json
//               (fast feedback for datapath work and the CI perf smoke)
//   --quick     shrink all workloads for a smoke pass (same as
//               TOPOSENSE_BENCH_QUICK=1)
//   --shard-smoke  run only a reduced star_sharded_4 determinism check and
//               exit nonzero on divergence (the TSan CI shard gate)

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "check/invariant_auditor.hpp"
#include "core/toposense.hpp"
#include "fault/fault_plan.hpp"
#include "metrics/recovery.hpp"
#include "scenarios/scenario.hpp"
#include "net/network.hpp"
#include "net/shard_link.hpp"
#include "scenarios/scenario_builder.hpp"
#include "sim/random.hpp"
#include "sim/shard_executor.hpp"
#include "sim/simulation.hpp"
#include "traffic/layered_source.hpp"

namespace {

using namespace tsim;
using sim::Time;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // Linux reports KiB
}

bool g_quick_flag = false;  // set by --quick

bool quick() {
  const char* env = std::getenv("TOPOSENSE_BENCH_QUICK");
  return g_quick_flag || (env != nullptr && std::strcmp(env, "1") == 0);
}

/// Median wall-clock of three repetitions of `run` (which returns wall_s).
/// Single timed runs of the kernel cases swing by +/-10% on a busy machine —
/// enough to report a negative audit overhead — and the median of 3 is the
/// cheapest estimator that ignores one bad outlier completely.
template <typename Fn>
double median_of_3(Fn&& run) {
  double w0 = run();
  double w1 = run();
  double w2 = run();
  if (w0 > w1) std::swap(w0, w1);
  if (w1 > w2) std::swap(w1, w2);
  return std::max(w0, std::min(w1, w2));
}

/// Two-level fat tree: one source, 16 routers, `receivers` spread below —
/// the same shape perf_kernel benchmarks interactively.
core::SessionInput fat_tree(int receivers) {
  core::SessionInput s;
  s.session = 0;
  s.source = 1;
  core::SessionNodeInput root;
  root.node = 1;
  root.parent = net::kInvalidNode;
  s.nodes.push_back(root);
  for (int r = 0; r < 16; ++r) {
    core::SessionNodeInput router;
    router.node = static_cast<net::NodeId>(10 + r);
    router.parent = 1;
    s.nodes.push_back(router);
  }
  for (int i = 0; i < receivers; ++i) {
    core::SessionNodeInput rcv;
    rcv.node = static_cast<net::NodeId>(1000 + i);
    rcv.parent = static_cast<net::NodeId>(10 + (i % 16));
    rcv.is_receiver = true;
    rcv.bytes_received = tsim::units::Bytes{28'000};
    rcv.subscription = 3;
    s.nodes.push_back(rcv);
  }
  return s;
}

struct KernelCase {
  int receivers;
  int intervals;
  double wall_s;
  double intervals_per_sec;
  double nodes_per_sec;
  /// --audit: the same case re-run with log-mode auditing of every pass.
  std::optional<double> audit_wall_s;
  std::optional<double> audit_overhead_pct;
  std::uint64_t audit_violations{0};
};

/// Drives TopoSense::run_interval with deterministically varying loss reports
/// (seeded, not time-based) so congestion histories, capacity estimation and
/// fair-share arbitration all stay exercised — a pure steady-state input
/// would measure only the cache-hit path. With `auditor` set, every pass is
/// additionally fed through the controller-postcondition checks — the
/// per-interval audit cost the --audit overhead number quantifies.
KernelCase run_kernel_case(int receivers, int intervals,
                           check::InvariantAuditor* auditor = nullptr) {
  core::Params params;
  core::TopoSense algo{params, sim::Rng{1}};
  core::AlgorithmInput input;
  input.window = Time::seconds(std::int64_t{1});
  input.sessions.push_back(fat_tree(receivers));

  sim::Rng loss_rng{42};
  Time now = Time::seconds(std::int64_t{1});
  const auto start = Clock::now();
  for (int k = 0; k < intervals; ++k) {
    for (core::SessionNodeInput& n : input.sessions[0].nodes) {
      if (!n.is_receiver) continue;
      // ~1/7 of receivers congested each interval, drifting deterministically.
      n.loss_rate = tsim::units::LossFraction{
          loss_rng.bernoulli(1.0 / 7.0) ? loss_rng.uniform(0.03, 0.15) : 0.0};
    }
    const core::AlgorithmOutput out = algo.run_interval(input, now);
    if (out.prescriptions.empty()) std::abort();  // keep the optimizer honest
    if (auditor != nullptr) {
      auditor->set_now(now);
      auditor->on_algorithm_output(input, out, algo);
    }
    now += Time::seconds(std::int64_t{1});
  }
  const double wall = seconds_since(start);
  const double nodes = static_cast<double>(input.sessions[0].nodes.size());
  return KernelCase{receivers,       intervals,
                    wall,            intervals / wall,
                    intervals * nodes / wall, std::nullopt,
                    std::nullopt,    0};
}

struct E2eCase {
  const char* name;
  int sessions;
  double sim_seconds;
  double wall_s;
  std::uint64_t events;
  double events_per_sec;
  std::uint64_t fingerprint;
};

/// FNV-1a over every receiver's subscription timeline + loss — the same
/// observable state the determinism tests fingerprint. Equal seeds must give
/// equal fingerprints across runs, platforms and (absent intentional
/// behaviour changes) PRs.
std::uint64_t fingerprint(const scenarios::Scenario& s) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& r : s.results()) {
    mix(r.node);
    mix(static_cast<std::uint64_t>(r.final_subscription));
    for (const auto& [t, level] : r.timeline.points()) {
      mix(static_cast<std::uint64_t>(t.as_nanoseconds()));
      mix(static_cast<std::uint64_t>(level));
    }
  }
  return h;
}

E2eCase run_e2e_case(int sessions, Time duration) {
  scenarios::ScenarioConfig config;
  config.seed = 1;
  config.duration = duration;
  scenarios::TopologyBOptions topology;
  topology.sessions = sessions;
  auto scenario = scenarios::ScenarioBuilder(config).topology_b(topology).build();
  const auto start = Clock::now();
  scenario->run();
  const double wall = seconds_since(start);
  const std::uint64_t events = scenario->simulation().scheduler().executed_events();
  return E2eCase{"topology_b", sessions, duration.as_seconds(), wall,
                 events, static_cast<double>(events) / wall, fingerprint(*scenario)};
}

/// --- fault benches ---------------------------------------------------------

struct FaultReceiverRow {
  std::string name;
  int optimal{0};
  int final_subscription{0};
  std::uint64_t unilateral_adds{0};
  std::uint64_t unilateral_drops{0};
  double max_suggestion_gap_s{0.0};
  std::optional<double> recovery_s;  ///< time from repair to (optimal-1)+ held
  bool recovered_within_1{false};
};

struct FaultCase {
  std::string name;
  std::string fault;  ///< human-readable description of the injected fault
  double sim_seconds{0.0};
  double wall_s{0.0};
  std::uint64_t fingerprint{0};
  std::uint64_t fingerprint_second{0};  ///< fingerprint of the same-seed re-run
  bool deterministic{false};  ///< second same-seed run matched the fingerprint
  std::vector<FaultReceiverRow> receivers;
};

/// Builds + runs the topology-A link-failure scenario once. The interesting
/// receivers sit behind bottleneck 1, which is hard-down in [down, up).
std::unique_ptr<scenarios::Scenario> run_link_failure(Time duration, Time down, Time up) {
  scenarios::ScenarioConfig config;
  config.seed = 42;
  config.duration = duration;
  fault::FaultPlan plan;
  plan.link_outage("r0", "r1", down, up);
  auto scenario = scenarios::ScenarioBuilder(config)
                      .topology_a(scenarios::TopologyAOptions{})
                      .with_faults(plan)
                      .build();
  scenario->run();
  return scenario;
}

std::unique_ptr<scenarios::Scenario> run_controller_outage(Time duration, Time down, Time up) {
  scenarios::ScenarioConfig config;
  config.seed = 43;
  config.duration = duration;
  fault::FaultPlan plan;
  plan.controller_outage(down, up);
  // Cross traffic arrives mid-outage so the receivers must back off without
  // any controller help — the paper's unilateral-decision rule under stress.
  const Time cross_start = down + Time::seconds(5);
  auto scenario = scenarios::ScenarioBuilder(config)
                      .topology_a(scenarios::TopologyAOptions{})
                      .with_faults(plan)
                      .with_cross_traffic({"r0", "r2", 700e3, cross_start, up})
                      .build();
  scenario->run();
  return scenario;
}

FaultCase summarize_fault_case(
    const std::string& name, const std::string& fault_desc, Time duration, Time repair,
    const std::function<std::unique_ptr<scenarios::Scenario>()>& run_once) {
  const auto start = Clock::now();
  auto first = run_once();
  const double wall = seconds_since(start);
  auto second = run_once();  // same seed: must reproduce bit-identically

  FaultCase c;
  c.name = name;
  c.fault = fault_desc;
  c.sim_seconds = duration.as_seconds();
  c.wall_s = wall;
  c.fingerprint = fingerprint(*first);
  c.fingerprint_second = fingerprint(*second);
  c.deterministic = c.fingerprint == c.fingerprint_second;

  const auto& agents = first->receiver_agents();
  for (std::size_t i = 0; i < first->results().size(); ++i) {
    const auto& r = first->results()[i];
    FaultReceiverRow row;
    row.name = r.name;
    row.optimal = r.optimal;
    row.final_subscription = r.final_subscription;
    row.unilateral_adds = agents[i]->unilateral_adds();
    row.unilateral_drops = agents[i]->unilateral_drops();
    row.max_suggestion_gap_s = agents[i]->max_suggestion_gap().as_seconds();
    metrics::RecoveryConfig rcfg;
    rcfg.repair = repair;
    rcfg.target = r.optimal;
    rcfg.tolerance = 1;
    rcfg.until = duration;
    if (const auto rec = metrics::recovery_time(r.timeline, rcfg)) {
      row.recovery_s = rec->as_seconds();
    }
    row.recovered_within_1 = r.final_subscription >= r.optimal - 1;
    c.receivers.push_back(std::move(row));
  }
  return c;
}

void write_fault_json(const std::string& path, const std::vector<FaultCase>& cases) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"fault\",\n  \"quick\": %s,\n  \"cases\": [\n",
               quick() ? "true" : "false");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const FaultCase& c = cases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"fault\": \"%s\", \"sim_seconds\": %.1f,\n"
                 "     \"wall_s\": %.6f, \"fingerprint\": \"%016llx\", "
                 "\"fingerprint_second\": \"%016llx\", \"deterministic\": %s,\n"
                 "     \"receivers\": [\n",
                 c.name.c_str(), c.fault.c_str(), c.sim_seconds, c.wall_s,
                 static_cast<unsigned long long>(c.fingerprint),
                 static_cast<unsigned long long>(c.fingerprint_second),
                 c.deterministic ? "true" : "false");
    for (std::size_t j = 0; j < c.receivers.size(); ++j) {
      const FaultReceiverRow& r = c.receivers[j];
      std::fprintf(f,
                   "      {\"name\": \"%s\", \"optimal\": %d, \"final\": %d, "
                   "\"unilateral_adds\": %llu, \"unilateral_drops\": %llu, "
                   "\"max_suggestion_gap_s\": %.1f, \"recovery_s\": ",
                   r.name.c_str(), r.optimal, r.final_subscription,
                   static_cast<unsigned long long>(r.unilateral_adds),
                   static_cast<unsigned long long>(r.unilateral_drops),
                   r.max_suggestion_gap_s);
      if (r.recovery_s) {
        std::fprintf(f, "%.1f", *r.recovery_s);
      } else {
        std::fprintf(f, "null");
      }
      std::fprintf(f, ", \"recovered_within_1\": %s}%s\n",
                   r.recovered_within_1 ? "true" : "false",
                   j + 1 < c.receivers.size() ? "," : "");
    }
    std::fprintf(f, "     ]}%s\n", i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"peak_rss_bytes\": %llu\n}\n",
               static_cast<unsigned long long>(peak_rss_bytes()));
  std::fclose(f);
}

int run_fault_benches(const std::string& out_dir) {
  const bool q = quick();
  const Time duration = Time::seconds(std::int64_t{q ? 240 : 360});
  const Time down = Time::seconds(std::int64_t{q ? 60 : 120});
  const Time up = down + Time::seconds(std::int64_t{60});

  std::vector<FaultCase> cases;
  cases.push_back(summarize_fault_case(
      "link_failure_topo_a", "link r0-r1 hard down, 60 s", duration, up,
      [&]() { return run_link_failure(duration, down, up); }));
  cases.push_back(summarize_fault_case(
      "controller_outage_topo_a", "controller down 60 s + 700 kbps cross traffic", duration,
      up, [&]() { return run_controller_outage(duration, down, up); }));

  write_fault_json(out_dir + "/BENCH_fault.json", cases);
  bool ok = true;
  for (const FaultCase& c : cases) {
    std::printf("fault   %-26s wall=%.3fs deterministic=%s fingerprint=%016llx\n",
                c.name.c_str(), c.wall_s, c.deterministic ? "yes" : "NO",
                static_cast<unsigned long long>(c.fingerprint));
    if (!c.deterministic) {
      std::fprintf(stderr,
                   "FINGERPRINT MISMATCH %s: first=%016llx second=%016llx (same seed)\n",
                   c.name.c_str(), static_cast<unsigned long long>(c.fingerprint),
                   static_cast<unsigned long long>(c.fingerprint_second));
    }
    for (const FaultReceiverRow& r : c.receivers) {
      std::printf("        %-10s optimal=%d final=%d unilateral=%llu+/%llu- gap=%.1fs "
                  "recovery=%s\n",
                  r.name.c_str(), r.optimal, r.final_subscription,
                  static_cast<unsigned long long>(r.unilateral_adds),
                  static_cast<unsigned long long>(r.unilateral_drops), r.max_suggestion_gap_s,
                  r.recovery_s ? (std::to_string(*r.recovery_s).substr(0, 5) + "s").c_str()
                               : "never");
      ok = ok && r.recovered_within_1;
    }
    ok = ok && c.deterministic;
  }
  std::printf("wrote %s/BENCH_fault.json\n", out_dir.c_str());
  if (!ok) {
    std::fprintf(stderr, "FAULT BENCH FAILURE: non-deterministic run or missed recovery\n");
    return 1;
  }
  return 0;
}

void write_kernel_json(const std::string& path, const std::vector<KernelCase>& cases) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"kernel\",\n  \"seed\": 1,\n  \"quick\": %s,\n",
               quick() ? "true" : "false");
  std::fprintf(f, "  \"cases\": [\n");
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const KernelCase& c = cases[i];
    std::fprintf(f,
                 "    {\"name\": \"toposense_interval_%d\", \"receivers\": %d, "
                 "\"intervals\": %d, \"wall_s\": %.6f, \"intervals_per_sec\": %.1f, "
                 "\"nodes_per_sec\": %.1f",
                 c.receivers, c.receivers, c.intervals, c.wall_s, c.intervals_per_sec,
                 c.nodes_per_sec);
    if (c.audit_wall_s && c.audit_overhead_pct) {
      std::fprintf(f,
                   ", \"audit_mode\": \"log\", \"audit_wall_s\": %.6f, "
                   "\"audit_overhead_pct\": %.2f, \"audit_violations\": %llu",
                   *c.audit_wall_s, *c.audit_overhead_pct,
                   static_cast<unsigned long long>(c.audit_violations));
    }
    std::fprintf(f, "}%s\n", i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"peak_rss_bytes\": %llu\n}\n",
               static_cast<unsigned long long>(peak_rss_bytes()));
  std::fclose(f);
}

void write_e2e_json(const std::string& path, const E2eCase& c) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"e2e\",\n  \"seed\": 1,\n  \"quick\": %s,\n",
               quick() ? "true" : "false");
  std::fprintf(f,
               "  \"scenario\": \"%s\",\n  \"sessions\": %d,\n  \"sim_seconds\": %.1f,\n"
               "  \"wall_s\": %.6f,\n  \"events\": %llu,\n  \"events_per_sec\": %.1f,\n"
               "  \"fingerprint\": \"%016llx\",\n  \"peak_rss_bytes\": %llu\n}\n",
               c.name, c.sessions, c.sim_seconds, c.wall_s,
               static_cast<unsigned long long>(c.events), c.events_per_sec,
               static_cast<unsigned long long>(c.fingerprint),
               static_cast<unsigned long long>(peak_rss_bytes()));
  std::fclose(f);
}

/// --- scale benches ----------------------------------------------------------
/// The scale tier answers a different question from the kernel/e2e benches:
/// not "how fast is one control interval / one mid-size scenario" but "does
/// the simulator stay usable at paper-superseding population sizes". Three
/// probes:
///   * star_fanout    — datapath-only: one source multicasting to 10k access
///                      links. No unicast, no controller — pure scheduler +
///                      link + fan-out throughput, and a check that the lazy
///                      routing table materializes zero per-source rows.
///   * tiered_1k      — the full closed loop (controller, reports, joins) on
///                      a tiered topology with ~1000 receivers.
///   * seed sweep     — N independent topology_b simulations on a thread
///                      pool, one Scheduler per simulation, each seed run
///                      twice: per-seed fingerprints must match across the
///                      two passes even with threads interleaving freely.

struct ScaleCase {
  std::string name;
  std::string kind;  ///< "datapath" or "closed_loop"
  int receivers;
  double sim_seconds;
  double wall_s;
  std::uint64_t events;
  double events_per_sec;
  std::uint64_t fingerprint;
  std::uint64_t fingerprint_second;
  bool deterministic;
  std::size_t routing_rows;  ///< per-source routing rows materialized
  /// Process high-water RSS sampled right after the case ran. getrusage
  /// reports a lifetime maximum, so this is cumulative across cases (a case
  /// can only raise it) — compare against the previous case's value to
  /// attribute growth.
  std::uint64_t peak_rss{0};
  /// star_fluid only: the packet-engine comparator run on the same topology,
  /// normalized per simulated second, and the resulting event-reduction
  /// factor (the tentpole number; bench_runner fails below 20x).
  std::optional<double> packet_events_per_sim_s;
  std::optional<double> fluid_events_per_sim_s;
  std::optional<double> event_reduction;
};

struct StarRun {
  std::uint64_t fingerprint;
  std::uint64_t events;
  std::size_t routing_rows;
  double wall_s;
};

/// One source VBR-multicasting all layers onto `receivers` access links — the
/// forwarder replicates every packet to every link, so this is the maximal
/// fan-out the datapath can be asked for. The fingerprint folds every
/// receiver's delivered byte/packet counters, which covers the source's RNG
/// draws, the queueing order and any drops.
StarRun run_star_once(int receivers, Time duration, std::uint64_t seed) {
  sim::Simulation simulation{seed};
  net::Network network{simulation};
  const net::NodeId src = network.add_node("src");
  std::vector<net::LinkId> links;
  links.reserve(static_cast<std::size_t>(receivers));
  for (int i = 0; i < receivers; ++i) {
    const net::NodeId rcv = network.add_node();
    links.push_back(network.add_link(src, rcv, tsim::units::BitsPerSec{10e6}, Time::milliseconds(5), 64));
  }
  network.compute_routes();

  struct Star final : net::MulticastForwarder {
    net::NodeId origin{net::kInvalidNode};
    const std::vector<net::LinkId>* links{nullptr};
    void route(net::NodeId node, const net::Packet&, std::vector<net::LinkId>& out,
               bool& local) override {
      if (node == origin) {
        out.insert(out.end(), links->begin(), links->end());
      } else {
        local = true;
      }
    }
  } forwarder;
  forwarder.origin = src;
  forwarder.links = &links;
  network.set_multicast_forwarder(&forwarder);

  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(receivers), 0);
  std::vector<std::uint64_t> packets(static_cast<std::size_t>(receivers), 0);
  for (int i = 0; i < receivers; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    // Receiver node ids are src+1 .. src+receivers in creation order.
    network.set_local_sink(static_cast<net::NodeId>(src + 1 + i),
                           [&bytes, &packets, idx](const net::PacketRef& p) {
                             bytes[idx] += p->size_bytes;
                             ++packets[idx];
                           });
  }

  traffic::LayeredSource::Config cfg;
  cfg.session = 0;
  cfg.node = src;
  cfg.model = traffic::TrafficModel::kVbr;  // exercises the source RNG path
  traffic::LayeredSource source{simulation, network, cfg};
  source.start();

  const auto start = Clock::now();
  simulation.run_until(duration);
  const double wall = seconds_since(start);

  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    mix(i);
    mix(bytes[i]);
    mix(packets[i]);
  }
  return StarRun{h, simulation.scheduler().executed_events(),
                 network.routes().computed_rows(), wall};
}

ScaleCase run_star_case(int receivers, Time duration) {
  const StarRun first = run_star_once(receivers, duration, 1);
  const StarRun second = run_star_once(receivers, duration, 1);
  ScaleCase c;
  c.name = "star_fanout";
  c.kind = "datapath";
  c.receivers = receivers;
  c.sim_seconds = duration.as_seconds();
  c.wall_s = first.wall_s;
  c.events = first.events;
  c.events_per_sec = static_cast<double>(first.events) / first.wall_s;
  c.fingerprint = first.fingerprint;
  c.fingerprint_second = second.fingerprint;
  c.deterministic =
      first.fingerprint == second.fingerprint && first.events == second.events;
  c.routing_rows = first.routing_rows;
  c.peak_rss = peak_rss_bytes();
  return c;
}

/// The same star split across `shards` Simulations under a ShardExecutor.
/// Shard 0 owns the source plus its slice of the receivers; every other shard
/// owns an entry node and a slice, fed through a net::ShardLink whose 5 ms
/// channel latency doubles as the conservative lookahead. With shards == 1 the
/// build degenerates to run_star_once exactly — same nodes, same links, same
/// construction order, plain run_until path — so the 1-shard fingerprint must
/// equal star_fanout's (asserted in run_scale_benches and pinned by the perf
/// baseline). Multi-shard fingerprints differ (remote receivers sit behind the
/// handoff hop) but must be identical for every thread count.
StarRun run_star_sharded_once(int receivers, Time duration, std::uint64_t seed,
                              std::size_t shards, std::size_t threads) {
  struct Star final : net::MulticastForwarder {
    net::NodeId origin{net::kInvalidNode};
    const std::vector<net::LinkId>* links{nullptr};
    sim::Simulation* sim{nullptr};
    /// Non-null only on shard 0: replicate to the remote shards too.
    const std::vector<std::unique_ptr<net::ShardLink>>* handoffs{nullptr};
    void route(net::NodeId node, const net::Packet& packet, std::vector<net::LinkId>& out,
               bool& local) override {
      if (node == origin) {
        out.insert(out.end(), links->begin(), links->end());
        if (handoffs != nullptr) {
          for (const auto& link : *handoffs) link->send(packet, sim->now());
        }
      } else {
        local = true;
      }
    }
  };
  struct Shard {
    std::unique_ptr<sim::Simulation> sim;
    std::unique_ptr<net::Network> net;
    std::vector<net::LinkId> links;
    net::NodeId hub{net::kInvalidNode};  ///< src on shard 0, entry elsewhere
    Star forwarder;
  };

  // Block partition: shard k owns global receivers [offset, offset + count).
  std::vector<std::size_t> counts(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    counts[k] = static_cast<std::size_t>(receivers) / shards +
                (k < static_cast<std::size_t>(receivers) % shards ? 1 : 0);
  }

  std::vector<std::uint64_t> bytes(static_cast<std::size_t>(receivers), 0);
  std::vector<std::uint64_t> packets(static_cast<std::size_t>(receivers), 0);

  std::vector<std::unique_ptr<Shard>> nets;
  std::size_t offset = 0;
  for (std::size_t k = 0; k < shards; ++k) {
    auto shard = std::make_unique<Shard>();
    // Remote seeds never draw (receivers are passive) but must be distinct so
    // any future RNG use doesn't silently correlate across shards.
    shard->sim = std::make_unique<sim::Simulation>(seed + 1000 * k);
    shard->net = std::make_unique<net::Network>(*shard->sim);
    shard->hub = shard->net->add_node(k == 0 ? "src" : "entry");
    shard->links.reserve(counts[k]);
    for (std::size_t i = 0; i < counts[k]; ++i) {
      const net::NodeId rcv = shard->net->add_node();
      shard->links.push_back(shard->net->add_link(shard->hub, rcv,
                                                  tsim::units::BitsPerSec{10e6},
                                                  Time::milliseconds(5), 64));
    }
    shard->net->compute_routes();
    shard->forwarder.origin = shard->hub;
    shard->forwarder.links = &shard->links;
    shard->forwarder.sim = shard->sim.get();
    shard->net->set_multicast_forwarder(&shard->forwarder);
    // Disjoint slices of the shared counters: shard k's sinks write only
    // [offset, offset + count), so parallel windows never touch a slot twice.
    for (std::size_t i = 0; i < counts[k]; ++i) {
      const std::size_t idx = offset + i;
      shard->net->set_local_sink(static_cast<net::NodeId>(shard->hub + 1 + i),
                                 [&bytes, &packets, idx](const net::PacketRef& p) {
                                   bytes[idx] += p->size_bytes;
                                   ++packets[idx];
                                 });
    }
    offset += counts[k];
    nets.push_back(std::move(shard));
  }

  sim::ShardExecutor executor{sim::ShardExecutor::Config{threads}};
  for (const auto& shard : nets) executor.add_shard(*shard->sim);
  std::vector<std::unique_ptr<net::ShardLink>> handoffs;
  for (std::size_t k = 1; k < shards; ++k) {
    sim::ShardExecutor::Channel& channel = executor.connect(0, k, Time::milliseconds(5));
    handoffs.push_back(
        std::make_unique<net::ShardLink>(channel, *nets[k]->net, nets[k]->hub));
  }
  nets[0]->forwarder.handoffs = &handoffs;

  traffic::LayeredSource::Config cfg;
  cfg.session = 0;
  cfg.node = nets[0]->hub;
  cfg.model = traffic::TrafficModel::kVbr;
  traffic::LayeredSource source{*nets[0]->sim, *nets[0]->net, cfg};
  source.start();

  const auto start = Clock::now();
  executor.run_until(duration);
  const double wall = seconds_since(start);

  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    mix(i);
    mix(bytes[i]);
    mix(packets[i]);
  }
  std::size_t rows = 0;
  for (const auto& shard : nets) rows += shard->net->routes().computed_rows();
  return StarRun{h, executor.executed_events(), rows, wall};
}

/// Determinism here means thread-count independence: the timed pass runs the
/// auto thread count (min(shards, hardware) — what a deployment would use),
/// the check pass forces one thread per shard so the pool and barrier merge
/// are exercised even on a single-core host, and the two must agree
/// bit-for-bit (the merge fixes handoff order).
ScaleCase run_star_sharded_case(int receivers, Time duration, std::size_t shards) {
  const StarRun parallel = run_star_sharded_once(receivers, duration, 1, shards, 0);
  const StarRun serial = run_star_sharded_once(receivers, duration, 1, shards, shards);
  ScaleCase c;
  c.name = "star_sharded_" + std::to_string(shards);
  c.kind = "datapath";
  c.receivers = receivers;
  c.sim_seconds = duration.as_seconds();
  c.wall_s = parallel.wall_s;
  c.events = parallel.events;
  c.events_per_sec = static_cast<double>(parallel.events) / parallel.wall_s;
  c.fingerprint = parallel.fingerprint;
  c.fingerprint_second = serial.fingerprint;
  c.deterministic =
      parallel.fingerprint == serial.fingerprint && parallel.events == serial.events;
  c.routing_rows = parallel.routing_rows;
  c.peak_rss = peak_rss_bytes();
  return c;
}

/// --- star_fluid: the fluid-engine scale tier --------------------------------

/// Full closed loop (discovery, reports, suggestions stay packet-level) on the
/// star topology with the selected traffic engine. Receivers start at
/// subscription 5 (the access links' optimum) so the data plane carries its
/// steady-state load from t=0 for both engines.
std::unique_ptr<scenarios::Scenario> run_star_closed_loop(int receivers, Time duration,
                                                          scenarios::TrafficEngine engine) {
  scenarios::ScenarioConfig config;
  config.seed = 11;
  config.duration = duration;
  config.traffic.engine = engine;
  config.control.initial_subscription = 5;
  scenarios::StarOptions star;
  star.receivers = receivers;
  auto scenario = scenarios::ScenarioBuilder(config).star(star).build();
  scenario->run();
  return scenario;
}

/// The subscription-timeline fingerprint is weak on the star (all receivers
/// share one bottleneck class, so most timelines are identical); fold in every
/// receiver's delivered/lost totals, which cover the fluid integerization and
/// the report/suggestion packet paths.
std::uint64_t star_fluid_fingerprint(scenarios::Scenario& s) {
  std::uint64_t h = fingerprint(s);
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const auto& endpoint : s.endpoints()) {
    mix(endpoint->total_packets().count());
    mix(endpoint->total_lost_packets().count());
    mix(endpoint->total_bytes().count());
  }
  return h;
}

/// The tentpole probe: the fluid engine must carry the 100k-receiver closed
/// loop with >= 20x fewer scheduler events per simulated second than the
/// packet engine on the identical topology. The fluid run executes twice
/// (same-seed determinism); the packet comparator runs once over a shorter
/// horizon — its per-sim-second event rate is steady state, so one second is
/// enough to normalize against.
ScaleCase run_star_fluid_case(int receivers, Time fluid_duration, Time packet_duration) {
  const auto start = Clock::now();
  auto first =
      run_star_closed_loop(receivers, fluid_duration, scenarios::TrafficEngine::kFluid);
  const double wall = seconds_since(start);
  auto second =
      run_star_closed_loop(receivers, fluid_duration, scenarios::TrafficEngine::kFluid);
  auto packet =
      run_star_closed_loop(receivers, packet_duration, scenarios::TrafficEngine::kPacket);

  ScaleCase c;
  c.name = "star_fluid_" + std::to_string(receivers / 1000) + "k";
  c.kind = "closed_loop";
  c.receivers = receivers;
  c.sim_seconds = fluid_duration.as_seconds();
  c.wall_s = wall;
  c.events = first->simulation().scheduler().executed_events();
  c.events_per_sec = static_cast<double>(c.events) / wall;
  c.fingerprint = star_fluid_fingerprint(*first);
  c.fingerprint_second = star_fluid_fingerprint(*second);
  c.deterministic = c.fingerprint == c.fingerprint_second &&
                    c.events == second->simulation().scheduler().executed_events();
  c.routing_rows = first->network().routes().computed_rows();
  const auto packet_events = packet->simulation().scheduler().executed_events();
  c.fluid_events_per_sim_s = static_cast<double>(c.events) / fluid_duration.as_seconds();
  c.packet_events_per_sim_s =
      static_cast<double>(packet_events) / packet_duration.as_seconds();
  c.event_reduction = *c.packet_events_per_sim_s / *c.fluid_events_per_sim_s;
  c.peak_rss = peak_rss_bytes();
  return c;
}

ScaleCase run_tiered_case(const scenarios::TieredOptions& topo, Time duration) {
  const auto run_once = [&]() {
    scenarios::ScenarioConfig config;
    config.seed = 7;
    config.duration = duration;
    auto scenario = scenarios::ScenarioBuilder(config).tiered(topo).build();
    scenario->run();
    return scenario;
  };
  const auto start = Clock::now();
  auto first = run_once();
  const double wall = seconds_since(start);
  auto second = run_once();

  ScaleCase c;
  c.name = "tiered_closed_loop";
  c.kind = "closed_loop";
  c.receivers = topo.regionals * topo.locals_per_regional * topo.receivers_per_local;
  c.sim_seconds = duration.as_seconds();
  c.wall_s = wall;
  c.events = first->simulation().scheduler().executed_events();
  c.events_per_sec = static_cast<double>(c.events) / wall;
  c.fingerprint = fingerprint(*first);
  c.fingerprint_second = fingerprint(*second);
  c.deterministic = c.fingerprint == c.fingerprint_second;
  c.routing_rows = first->network().routes().computed_rows();
  c.peak_rss = peak_rss_bytes();
  return c;
}

struct SweepResult {
  std::uint64_t seed;
  std::uint64_t events;
  std::uint64_t fingerprint;
  std::uint64_t fingerprint_second;
  bool deterministic;
};

struct SweepSummary {
  int sessions;
  double sim_seconds;
  unsigned threads;
  double wall_s;
  std::uint64_t total_events;  ///< across both passes of every seed
  double aggregate_events_per_sec;
  std::vector<SweepResult> results;
  bool deterministic;
};

/// Runs `seeds` independent topology_b simulations on a thread pool, each
/// seed twice. Determinism must hold per seed regardless of how the OS
/// interleaves the workers — each simulation owns its Scheduler, Network and
/// RNG streams, so the only shared state is the result slots written by
/// distinct workers.
SweepSummary run_seed_sweep(int sessions, Time duration, std::uint64_t seeds) {
  SweepSummary s;
  s.sessions = sessions;
  s.sim_seconds = duration.as_seconds();
  const unsigned hw = std::thread::hardware_concurrency();
  s.threads = std::min<unsigned>(hw == 0 ? 2 : hw, static_cast<unsigned>(seeds));
  s.results.resize(seeds);

  const auto run_seed = [&](std::uint64_t seed) {
    scenarios::ScenarioConfig config;
    config.seed = seed;
    config.duration = duration;
    scenarios::TopologyBOptions topology;
    topology.sessions = sessions;
    auto scenario = scenarios::ScenarioBuilder(config).topology_b(topology).build();
    scenario->run();
    return std::pair{fingerprint(*scenario),
                     scenario->simulation().scheduler().executed_events()};
  };

  const auto start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(s.threads);
  for (unsigned w = 0; w < s.threads; ++w) {
    workers.emplace_back([&, w]() {
      for (std::uint64_t i = w; i < seeds; i += s.threads) {
        const std::uint64_t seed = i + 1;
        const auto [fp1, events] = run_seed(seed);
        const auto [fp2, events2] = run_seed(seed);
        s.results[i] = SweepResult{seed, events + events2, fp1, fp2,
                                   fp1 == fp2 && events == events2};
      }
    });
  }
  for (std::thread& t : workers) t.join();
  s.wall_s = seconds_since(start);

  s.total_events = 0;
  s.deterministic = true;
  for (const SweepResult& r : s.results) {
    s.total_events += r.events;
    s.deterministic = s.deterministic && r.deterministic;
  }
  s.aggregate_events_per_sec = static_cast<double>(s.total_events) / s.wall_s;
  return s;
}

void write_scale_json(const std::string& path, const std::vector<ScaleCase>& cases,
                      const SweepSummary& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::perror(path.c_str());
    std::exit(1);
  }
  // Host metadata lets the perf gate tell "this build got slower" apart from
  // "this runner has fewer cores": check_perf_baseline.py keeps determinism
  // and fingerprint gates but skips the throughput floor on 1-core hosts.
  std::fprintf(f,
               "{\n  \"bench\": \"scale\",\n  \"quick\": %s,\n"
               "  \"host\": {\"hardware_concurrency\": %u, \"sweep_threads\": %u},\n"
               "  \"cases\": [\n",
               quick() ? "true" : "false", std::thread::hardware_concurrency(),
               sweep.threads);
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ScaleCase& c = cases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"kind\": \"%s\", \"receivers\": %d, "
                 "\"sim_seconds\": %.1f,\n"
                 "     \"wall_s\": %.6f, \"events\": %llu, \"events_per_sec\": %.1f,\n"
                 "     \"fingerprint\": \"%016llx\", \"fingerprint_second\": \"%016llx\", "
                 "\"deterministic\": %s, \"routing_rows\": %zu, \"peak_rss_bytes\": %llu",
                 c.name.c_str(), c.kind.c_str(), c.receivers, c.sim_seconds, c.wall_s,
                 static_cast<unsigned long long>(c.events), c.events_per_sec,
                 static_cast<unsigned long long>(c.fingerprint),
                 static_cast<unsigned long long>(c.fingerprint_second),
                 c.deterministic ? "true" : "false", c.routing_rows,
                 static_cast<unsigned long long>(c.peak_rss));
    if (c.event_reduction) {
      std::fprintf(f,
                   ",\n     \"fluid_events_per_sim_s\": %.1f, "
                   "\"packet_events_per_sim_s\": %.1f, \"event_reduction\": %.1f",
                   *c.fluid_events_per_sim_s, *c.packet_events_per_sim_s,
                   *c.event_reduction);
    }
    std::fprintf(f, "}%s\n", i + 1 < cases.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"sweep\": {\n    \"scenario\": \"topology_b\", \"sessions\": %d, "
               "\"sim_seconds\": %.1f, \"seeds\": %zu, \"threads\": %u,\n"
               "    \"wall_s\": %.6f, \"total_events\": %llu, "
               "\"aggregate_events_per_sec\": %.1f, \"deterministic\": %s,\n"
               "    \"results\": [\n",
               sweep.sessions, sweep.sim_seconds, sweep.results.size(), sweep.threads,
               sweep.wall_s, static_cast<unsigned long long>(sweep.total_events),
               sweep.aggregate_events_per_sec, sweep.deterministic ? "true" : "false");
  for (std::size_t i = 0; i < sweep.results.size(); ++i) {
    const SweepResult& r = sweep.results[i];
    std::fprintf(f,
                 "      {\"seed\": %llu, \"events\": %llu, \"fingerprint\": \"%016llx\", "
                 "\"fingerprint_second\": \"%016llx\", \"deterministic\": %s}%s\n",
                 static_cast<unsigned long long>(r.seed),
                 static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(r.fingerprint),
                 static_cast<unsigned long long>(r.fingerprint_second),
                 r.deterministic ? "true" : "false",
                 i + 1 < sweep.results.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n  \"peak_rss_bytes\": %llu\n}\n",
               static_cast<unsigned long long>(peak_rss_bytes()));
  std::fclose(f);
}

/// Reduced star_sharded_4 run for the TSan CI gate: small enough that a
/// sanitized build finishes in seconds, but it still spins up the worker
/// pool, crosses every shard boundary, and re-checks the run with one thread
/// per shard. Exit status is the verdict — nonzero on any divergence.
int run_shard_smoke() {
  const ScaleCase c = run_star_sharded_case(500, Time::milliseconds(500), 4);
  std::printf("shard-smoke %-18s receivers=%-6d sim=%.1fs wall=%.3fs  "
              "fingerprint=%016llx deterministic=%s\n",
              c.name.c_str(), c.receivers, c.sim_seconds, c.wall_s,
              static_cast<unsigned long long>(c.fingerprint),
              c.deterministic ? "yes" : "NO");
  if (!c.deterministic) {
    std::fprintf(stderr,
                 "SHARD SMOKE FAILURE: fingerprint %016llx != %016llx across thread "
                 "counts — sharded execution is nondeterministic\n",
                 static_cast<unsigned long long>(c.fingerprint),
                 static_cast<unsigned long long>(c.fingerprint_second));
    return 1;
  }
  return 0;
}

int run_scale_benches(const std::string& out_dir) {
  const bool q = quick();


  const int star_receivers = q ? 2000 : 10000;
  const Time star_duration = Time::seconds(std::int64_t{q ? 1 : 5});
  std::vector<ScaleCase> cases;
  cases.push_back(run_star_case(star_receivers, star_duration));
  const std::uint64_t star_fp = cases.back().fingerprint;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    cases.push_back(run_star_sharded_case(star_receivers, star_duration, shards));
  }
  // The 1-shard sharded build must reduce to the unsharded star exactly —
  // same nodes, same order, plain run_until path, same fingerprint.
  const bool sharded_identity = cases[1].fingerprint == star_fp;

  scenarios::TieredOptions tiered;
  if (q) {
    tiered.regionals = 4;
    tiered.locals_per_regional = 3;
    tiered.receivers_per_local = 5;  // 60 receivers
  } else {
    tiered.regionals = 8;
    tiered.locals_per_regional = 5;
    tiered.receivers_per_local = 25;  // 1000 receivers
  }
  cases.push_back(run_tiered_case(tiered, Time::seconds(std::int64_t{q ? 10 : 30})));

  // The fluid closed loop: 100k receivers in the full tier (the tentpole
  // population), 10k in quick. The packet comparator covers one simulated
  // second — enough to normalize its steady-state event rate.
  const int fluid_receivers = q ? 10000 : 100000;
  cases.push_back(run_star_fluid_case(fluid_receivers, Time::seconds(std::int64_t{5}),
                                      Time::seconds(std::int64_t{1})));
  const double event_reduction = cases.back().event_reduction.value_or(0.0);

  const SweepSummary sweep =
      run_seed_sweep(4, Time::seconds(std::int64_t{q ? 30 : 120}), q ? 4 : 8);

  write_scale_json(out_dir + "/BENCH_scale.json", cases, sweep);

  bool ok = true;
  for (const ScaleCase& c : cases) {
    std::printf("scale   %-20s receivers=%-6d sim=%.0fs wall=%.3fs  %.2fM events/s  "
                "routing_rows=%zu deterministic=%s",
                c.name.c_str(), c.receivers, c.sim_seconds, c.wall_s,
                c.events_per_sec / 1e6, c.routing_rows, c.deterministic ? "yes" : "NO");
    if (c.event_reduction) std::printf("  event_reduction=%.1fx", *c.event_reduction);
    std::printf("\n");
    ok = ok && c.deterministic;
  }
  std::printf("scale   seed_sweep           seeds=%zu threads=%u wall=%.3fs  "
              "%.2fM events/s aggregate  deterministic=%s\n",
              sweep.results.size(), sweep.threads, sweep.wall_s,
              sweep.aggregate_events_per_sec / 1e6, sweep.deterministic ? "yes" : "NO");
  ok = ok && sweep.deterministic;
  std::printf("wrote %s/BENCH_scale.json\n", out_dir.c_str());
  if (!sharded_identity) {
    std::fprintf(stderr,
                 "SCALE BENCH FAILURE: star_sharded_1 fingerprint %016llx != star_fanout "
                 "%016llx — the 1-shard path no longer reduces to the plain star\n",
                 static_cast<unsigned long long>(cases[1].fingerprint),
                 static_cast<unsigned long long>(star_fp));
    return 1;
  }
  if (event_reduction < 20.0) {
    std::fprintf(stderr,
                 "SCALE BENCH FAILURE: fluid engine reduced scheduler events only %.1fx "
                 "vs the packet engine (acceptance floor: 20x)\n",
                 event_reduction);
    return 1;
  }
  if (!ok) {
    std::fprintf(stderr, "SCALE BENCH FAILURE: fingerprint mismatch on a same-seed re-run\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = ".";
  bool fault_mode = false;
  bool audit_mode = false;
  bool scale_mode = false;
  bool e2e_mode = false;
  bool shard_smoke_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--fault") == 0) {
      fault_mode = true;
    } else if (std::strcmp(argv[i], "--audit") == 0) {
      audit_mode = true;
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      scale_mode = true;
    } else if (std::strcmp(argv[i], "--e2e") == 0) {
      e2e_mode = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      g_quick_flag = true;
    } else if (std::strcmp(argv[i], "--shard-smoke") == 0) {
      shard_smoke_mode = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--out DIR] [--fault] [--audit] [--scale] [--e2e] "
                   "[--quick] [--shard-smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  if (shard_smoke_mode) return run_shard_smoke();
  if (fault_mode) return run_fault_benches(out_dir);
  if (scale_mode) return run_scale_benches(out_dir);

  const bool q = quick();

  if (e2e_mode) {
    const E2eCase e2e = run_e2e_case(4, Time::seconds(std::int64_t{q ? 60 : 600}));
    write_e2e_json(out_dir + "/BENCH_e2e.json", e2e);
    std::printf(
        "e2e     %s sessions=%d sim=%.0fs wall=%.3fs  %.2fM events/s  fingerprint=%016llx\n",
        e2e.name, e2e.sessions, e2e.sim_seconds, e2e.wall_s, e2e.events_per_sec / 1e6,
        static_cast<unsigned long long>(e2e.fingerprint));
    std::printf("wrote %s/BENCH_e2e.json\n", out_dir.c_str());
    return 0;
  }

  // Kernel case walls are medians of 3 runs — the headline numbers and the
  // audit-overhead baseline below must not wobble with scheduler jitter.
  const auto kernel_case_median = [](int receivers, int intervals) {
    const double wall =
        median_of_3([&]() { return run_kernel_case(receivers, intervals).wall_s; });
    const double nodes = receivers + 17.0;  // fat_tree: root + 16 routers + receivers
    return KernelCase{receivers,
                      intervals,
                      wall,
                      intervals / wall,
                      intervals * nodes / wall,
                      std::nullopt,
                      std::nullopt,
                      0};
  };
  std::vector<KernelCase> kernel;
  kernel.push_back(kernel_case_median(256, q ? 200 : 2000));
  kernel.push_back(kernel_case_median(4096, q ? 50 : 500));
  if (audit_mode) {
    // Re-run each case with log-mode auditing of every controller pass; the
    // delta is the audit overhead the acceptance budget caps at 15%. Both
    // sides of the ratio are medians of 3 — a single timed run swings enough
    // on a busy machine to report a (meaningless) negative overhead.
    for (KernelCase& c : kernel) {
      check::AuditConfig acfg;
      acfg.mode = check::AuditMode::kLog;
      acfg.log_to_stderr = false;  // keep bench output machine-parsable
      std::uint64_t violations = 0;
      const double audit_wall = median_of_3([&]() {
        check::InvariantAuditor auditor{acfg};
        const double wall = run_kernel_case(c.receivers, c.intervals, &auditor).wall_s;
        violations = auditor.violation_count();  // identical input every rep
        return wall;
      });
      c.audit_wall_s = audit_wall;
      c.audit_overhead_pct = (audit_wall / c.wall_s - 1.0) * 100.0;
      c.audit_violations = violations;
    }
  }
  write_kernel_json(out_dir + "/BENCH_kernel.json", kernel);
  bool audit_budget_ok = true;
  for (const KernelCase& c : kernel) {
    std::printf("kernel  receivers=%-5d intervals=%-5d wall=%.3fs  %.0f intervals/s  %.2fM nodes/s\n",
                c.receivers, c.intervals, c.wall_s, c.intervals_per_sec, c.nodes_per_sec / 1e6);
    if (c.audit_overhead_pct) {
      std::printf("        audit(log) wall=%.3fs overhead=%+.1f%% violations=%llu\n",
                  *c.audit_wall_s, *c.audit_overhead_pct,
                  static_cast<unsigned long long>(c.audit_violations));
      if (*c.audit_overhead_pct > 15.0) audit_budget_ok = false;
      if (c.audit_violations != 0) audit_budget_ok = false;
    }
  }
  if (!audit_budget_ok) {
    std::fprintf(stderr,
                 "AUDIT BENCH FAILURE: overhead above 15%% budget or violations found\n");
  }

  const E2eCase e2e = run_e2e_case(4, Time::seconds(std::int64_t{q ? 60 : 600}));
  write_e2e_json(out_dir + "/BENCH_e2e.json", e2e);
  std::printf("e2e     %s sessions=%d sim=%.0fs wall=%.3fs  %.2fM events/s  fingerprint=%016llx\n",
              e2e.name, e2e.sessions, e2e.sim_seconds, e2e.wall_s, e2e.events_per_sec / 1e6,
              static_cast<unsigned long long>(e2e.fingerprint));
  std::printf("wrote %s/BENCH_kernel.json and %s/BENCH_e2e.json\n", out_dir.c_str(),
              out_dir.c_str());
  return audit_budget_ok ? 0 : 1;
}
