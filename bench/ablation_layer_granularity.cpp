// Ablation — layer granularity (paper §V "Group-leave latency and layer
// granularity").
//
// Finer layers (smaller growth factor, more layers) bound the magnitude of
// the congestion a failed add causes, but slow convergence since layers are
// added one at a time. Compare the paper's 6x2.0 encoding against finer and
// coarser alternatives with equal total bandwidth reach.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Ablation", "layer granularity, Topology A, CBR");

  struct Encoding {
    const char* label;
    int num_layers;
    double base_bps;
    double growth;
  };
  // All encodings top out near ~2 Mbps cumulative.
  const std::vector<Encoding> encodings = {
      {"coarse  (4 x 3.0)", 4, 50e3, 3.0},
      {"paper   (6 x 2.0)", 6, 32e3, 2.0},
      {"fine    (10 x 1.5)", 10, 18e3, 1.5},
      {"v.fine  (16 x 1.3)", 16, 12e3, 1.3},
  };

  std::printf("%-20s %10s %18s %14s %12s\n", "encoding", "optimal", "mean deviation",
              "convergence[s]", "mean loss%%");
  for (const Encoding& enc : encodings) {
    scenarios::ScenarioConfig config;
    config.seed = 6002;
    config.traffic.model = traffic::TrafficModel::kCbr;
    config.duration = bench::run_duration();
    config.params.layers.num_layers = enc.num_layers;
    config.params.layers.base_rate = tsim::units::BitsPerSec{enc.base_bps};
    config.params.layers.layer_growth = enc.growth;

    auto scenario = scenarios::ScenarioBuilder(config).topology_a(scenarios::TopologyAOptions{}).build();
    scenario->run();

    double dev = 0.0;
    double loss = 0.0;
    double convergence = 0.0;
    int optimal_any = 0;
    for (const auto& r : scenario->results()) {
      dev += r.timeline.relative_deviation(r.optimal, Time::zero(), config.duration);
      loss += r.loss_overall;
      optimal_any = r.optimal;
      // First time the receiver touches its optimal level.
      double reach = config.duration.as_seconds();
      for (const auto& [t, level] : r.timeline.points()) {
        if (level >= r.optimal) {
          reach = t.as_seconds();
          break;
        }
      }
      convergence += reach;
    }
    const double n = static_cast<double>(scenario->results().size());
    std::printf("%-20s %10d %18.3f %14.1f %12.2f\n", enc.label, optimal_any, dev / n,
                convergence / n, 100.0 * loss / n);
  }
  std::printf("\nexpected: finer layers take longer to reach the optimum (one layer per\n"
              "interval) but overshoot by smaller bandwidth steps (lower loss).\n");
  return 0;
}
