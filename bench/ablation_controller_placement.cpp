// Ablation — controller placement.
//
// The paper stations the controller at a source node ("this made the
// simulations more realistic as control messages could be lost due to
// congestion", §IV) but the architecture allows any node in the domain.
// Placement changes the control loop: a controller near the receivers hears
// reports sooner and its suggestions cross fewer congested links.
#include <cstdio>
#include <string>

#include "common.hpp"
#include "scenarios/topology_file.hpp"

namespace {

std::string build_description(const std::string& controller_node) {
  std::string d = R"(
node src
node core
node edge
node r0
node r1
node r2
node r3
link src core 45Mbps 200ms
link core edge 512kbps 200ms
link edge r0 10Mbps 20ms
link edge r1 10Mbps 20ms
link edge r2 10Mbps 20ms
link edge r3 10Mbps 20ms
source 0 src
receiver r0 0
receiver r1 0
receiver r2 0
receiver r3 0
)";
  d += "controller " + controller_node + "\n";
  return d;
}

}  // namespace

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Ablation", "controller placement (source vs domain edge router)");

  std::printf("%-12s %18s %14s %12s\n", "controller", "mean deviation", "total changes",
              "mean loss%%");
  for (const char* node : {"src", "edge"}) {
    const auto parsed = scenarios::parse_topology(build_description(node));
    if (!parsed.ok()) {
      std::fprintf(stderr, "internal: %s\n", parsed.error.c_str());
      return 1;
    }
    scenarios::ScenarioConfig config;
    config.seed = 9400;
    config.traffic.model = traffic::TrafficModel::kVbr;
    config.traffic.peak_to_mean = 3.0;
    config.duration = bench::run_duration();
    auto scenario = scenarios::Scenario::from_description(config, *parsed.description);
    scenario->run();

    double dev = 0.0;
    int changes = 0;
    double loss = 0.0;
    for (const auto& r : scenario->results()) {
      dev += r.timeline.relative_deviation(r.optimal, Time::zero(), config.duration);
      changes += r.timeline.change_count(Time::zero(), config.duration);
      loss += r.loss_overall;
    }
    const double n = static_cast<double>(scenario->results().size());
    std::printf("%-12s %18.3f %14d %12.2f\n", node, dev / n, changes,
                100.0 * loss / n);
  }
  std::printf("\nexpected: the edge controller reacts ~one RTT faster and its suggestions\n"
              "avoid the congested 512 kbps hop, giving equal-or-better deviation and\n"
              "loss — the paper's domain-controller architecture (Fig 3) in numbers.\n");
  return 0;
}
