// Ablation — receiver churn (paper §II: receivers register with the
// controller when they start subscribing; the architecture must handle
// arrivals and departures mid-session).
//
// Receivers join staggered and a fraction leaves mid-run; measure how the
// stayers' quality is affected compared to a static population.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Ablation", "receiver churn on Topology A (staggered joins, mid-run leaves)");

  struct Case {
    const char* label;
    sim::Time stagger;
    double leave_fraction;
  };
  const std::vector<Case> cases = {
      {"static", Time::zero(), 0.0},
      {"staggered joins", Time::seconds(15), 0.0},
      {"joins + leaves", Time::seconds(15), 0.5},
  };

  const Time leave_at = Time::seconds(bench::run_duration().as_seconds() / 2.0);
  std::printf("%-18s %20s %18s %14s\n", "population", "stayer dev (tail)", "stayer loss%%",
              "total changes");
  for (const Case& c : cases) {
    scenarios::ScenarioConfig config;
    config.seed = 6007;
    config.traffic.model = traffic::TrafficModel::kVbr;
    config.traffic.peak_to_mean = 3.0;
    config.duration = bench::run_duration();
    scenarios::TopologyAOptions options;
    options.receivers_per_set = 4;
    options.join_stagger = c.stagger;
    options.leave_fraction = c.leave_fraction;
    if (c.leave_fraction > 0.0) options.leave_at = leave_at;

    auto scenario = scenarios::ScenarioBuilder(config).topology_a(options).build();
    scenario->run();

    // Stayers: receiver 0 of each set always stays.
    const Time tail_from = Time::seconds(config.duration.as_seconds() * 0.7);
    double dev = 0.0;
    double loss = 0.0;
    int changes = 0;
    int stayers = 0;
    for (const auto& r : scenario->results()) {
      changes += r.timeline.change_count(Time::zero(), config.duration);
      if (r.final_subscription == 0) continue;  // a leaver
      dev += r.timeline.relative_deviation(r.optimal, tail_from, config.duration);
      loss += r.loss_overall;
      ++stayers;
    }
    std::printf("%-18s %20.3f %18.2f %14d\n", c.label, dev / stayers,
                100.0 * loss / stayers, changes);
  }
  std::printf("\nexpected: stayers keep (or improve, after leaves free bandwidth) their\n"
              "quality; churn shows up as extra subscription changes, not as\n"
              "collapsed subscriptions.\n");
  return 0;
}
