#include "common.hpp"

#include <cstdlib>

namespace bench {

bool quick_mode() {
  const char* env = std::getenv("TOPOSENSE_BENCH_QUICK");
  return env != nullptr && env[0] == '1';
}

tsim::sim::Time run_duration() {
  return tsim::sim::Time::seconds(std::int64_t{quick_mode() ? 200 : 1200});
}

const std::vector<TrafficCase>& traffic_cases() {
  static const std::vector<TrafficCase> cases = {
      {"CBR", tsim::traffic::TrafficModel::kCbr, 1.0},
      {"VBR(P=3)", tsim::traffic::TrafficModel::kVbr, 3.0},
      {"VBR(P=6)", tsim::traffic::TrafficModel::kVbr, 6.0},
  };
  return cases;
}

void apply(const TrafficCase& tc, tsim::scenarios::ScenarioConfig& config) {
  config.traffic.model = tc.model;
  config.traffic.peak_to_mean = tc.peak_to_mean;
}

void print_header(const std::string& figure, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("duration: %.0f s%s\n", run_duration().as_seconds(),
              quick_mode() ? " (quick mode)" : "");
  std::printf("==============================================================\n");
}

}  // namespace bench
