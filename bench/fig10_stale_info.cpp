// Figure 10 — Impact of stale information on Topology A (VBR, P=3).
//
// The paper varies the staleness of the topology/loss information from 2 s to
// 18 s and plots the mean relative deviation from the optimal subscription,
// for sessions with different numbers of receivers. Expected shape:
// performance degrades with staleness, the 2-receiver session is least
// affected, and the curve flattens around 10 s.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Figure 10", "impact of stale information, Topology A, VBR(P=3)");

  const std::vector<int> staleness_values =
      bench::quick_mode() ? std::vector<int>{0, 4, 10} : std::vector<int>{0, 2, 4, 6, 8, 10, 14, 18};
  const std::vector<int> receiver_counts =
      bench::quick_mode() ? std::vector<int>{2} : std::vector<int>{1, 2, 4, 8};

  std::printf("%-14s", "staleness[s]");
  for (const int n : receiver_counts) std::printf("  dev(%2d recv/set)", n);
  std::printf("\n");

  for (const int staleness : staleness_values) {
    std::printf("%-14d", staleness);
    for (const int n : receiver_counts) {
      scenarios::ScenarioConfig config;
      config.seed = 5000 + n;
      config.traffic.model = traffic::TrafficModel::kVbr;
      config.traffic.peak_to_mean = 3.0;
      config.duration = bench::run_duration();
      config.control.info_staleness = Time::seconds(staleness);

      scenarios::TopologyAOptions topology;
      topology.receivers_per_set = n;

      auto scenario = scenarios::ScenarioBuilder(config).topology_a(topology).build();
      scenario->run();

      double dev = 0.0;
      for (const auto& r : scenario->results()) {
        dev += r.timeline.relative_deviation(r.optimal, Time::zero(), config.duration);
      }
      std::printf("  %16.3f", dev / static_cast<double>(scenario->results().size()));
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: deviation grows with staleness, degrades noticeably after\n"
              "~4 s and roughly flattens by ~10 s; small sessions are least affected\n"
              "(less control traffic at risk). All runs remain stable.\n");
  return 0;
}
