// Figure 6 — Stability in Topology A.
//
// The paper counts subscription changes per receiver over 1200 s on
// Topology A while growing the number of receivers per set, and plots
//  (a) the maximum number of changes by any receiver, and
//  (b) the mean time elapsed between successive changes for that receiver,
// for CBR, VBR(P=3) and VBR(P=6) traffic.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Figure 6", "stability in Topology A (max changes by any receiver, "
                                  "mean time between its changes)");

  const std::vector<int> receiver_counts =
      bench::quick_mode() ? std::vector<int>{2, 4} : std::vector<int>{1, 2, 4, 8, 16};

  std::printf("%-10s %14s %14s %22s\n", "traffic", "receivers/set", "max changes",
              "mean gap [s]");
  for (const auto& tc : bench::traffic_cases()) {
    for (const int n : receiver_counts) {
      scenarios::ScenarioConfig config;
      config.seed = 1000 + n;
      config.duration = bench::run_duration();
      bench::apply(tc, config);

      scenarios::TopologyAOptions topology;
      topology.receivers_per_set = n;

      auto scenario = scenarios::ScenarioBuilder(config).topology_a(topology).build();
      scenario->run();

      int max_changes = 0;
      double gap_of_max = config.duration.as_seconds();
      for (const auto& r : scenario->results()) {
        const int changes = r.timeline.change_count(Time::zero(), config.duration);
        if (changes > max_changes) {
          max_changes = changes;
          gap_of_max = r.timeline.mean_time_between_changes_s(Time::zero(), config.duration);
        }
      }
      std::printf("%-10s %14d %14d %22.1f\n", tc.label, n, max_changes, gap_of_max);
    }
    std::printf("\n");
  }
  std::printf("paper shape: changes stay bounded (tens over 1200 s) with long stable\n"
              "spells; variability comes from the randomized backoff interval.\n");
  return 0;
}
