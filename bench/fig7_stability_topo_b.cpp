// Figure 7 — Stability in Topology B.
//
// Same stability statistics as Fig 6, but on Topology B: n single-receiver
// sessions over one shared link sized n*500 Kbps, so each session can ideally
// hold 4 layers. Reports the maximum changes in any session and the mean time
// between changes for that session.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Figure 7", "stability in Topology B (max changes in any session, "
                                  "mean time between its changes)");

  const std::vector<int> session_counts =
      bench::quick_mode() ? std::vector<int>{2, 4} : std::vector<int>{1, 2, 4, 8, 16};

  std::printf("%-10s %10s %14s %22s\n", "traffic", "sessions", "max changes", "mean gap [s]");
  for (const auto& tc : bench::traffic_cases()) {
    for (const int n : session_counts) {
      scenarios::ScenarioConfig config;
      config.seed = 2000 + n;
      config.duration = bench::run_duration();
      bench::apply(tc, config);

      scenarios::TopologyBOptions topology;
      topology.sessions = n;

      auto scenario = scenarios::ScenarioBuilder(config).topology_b(topology).build();
      scenario->run();

      int max_changes = 0;
      double gap_of_max = config.duration.as_seconds();
      for (const auto& r : scenario->results()) {
        const int changes = r.timeline.change_count(Time::zero(), config.duration);
        if (changes > max_changes) {
          max_changes = changes;
          gap_of_max = r.timeline.mean_time_between_changes_s(Time::zero(), config.duration);
        }
      }
      std::printf("%-10s %10d %14d %22.1f\n", tc.label, n, max_changes, gap_of_max);
    }
    std::printf("\n");
  }
  std::printf("paper shape: stable spells dominate; most changes are short join/leave\n"
              "probes when receivers explore newly freed capacity.\n");
  return 0;
}
