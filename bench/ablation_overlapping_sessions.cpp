// Ablation — overlapping multi-receiver sessions.
//
// The paper's Topology A has one session; Topology B has single-receiver
// sessions. The general case the algorithm claims (§III: "the more general
// case of multiple multicast sessions competing for bandwidth") is several
// sessions, each with receivers behind *both* shared bottlenecks. The
// offline lexicographic allocator provides the per-receiver optima.
#include <cstdio>
#include <string>

#include "common.hpp"
#include "metrics/fairness.hpp"
#include "scenarios/topology_file.hpp"

namespace {

std::string build_description(int sessions) {
  std::string d;
  d += "node core\nnode tight\nnode wide\n";
  for (int s = 0; s < sessions; ++s) {
    d += "node src" + std::to_string(s) + "\n";
    d += "node t" + std::to_string(s) + "\n";  // receiver behind the tight branch
    d += "node w" + std::to_string(s) + "\n";  // receiver behind the wide branch
  }
  for (int s = 0; s < sessions; ++s) {
    d += "link src" + std::to_string(s) + " core 45Mbps 50ms\n";
    d += "link tight t" + std::to_string(s) + " 10Mbps 20ms\n";
    d += "link wide w" + std::to_string(s) + " 10Mbps 20ms\n";
  }
  // Both bottlenecks are shared by every session.
  d += "link core tight " + std::to_string(sessions * 256) + "kbps 100ms\n";
  d += "link core wide " + std::to_string(sessions * 1024) + "kbps 100ms\n";
  for (int s = 0; s < sessions; ++s) {
    d += "source " + std::to_string(s) + " src" + std::to_string(s) + "\n";
    d += "receiver t" + std::to_string(s) + " " + std::to_string(s) + "\n";
    d += "receiver w" + std::to_string(s) + " " + std::to_string(s) + "\n";
  }
  d += "controller src0\n";
  return d;
}

}  // namespace

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Ablation",
                      "overlapping sessions: every session has receivers behind BOTH "
                      "shared bottlenecks");

  const std::vector<int> session_counts =
      bench::quick_mode() ? std::vector<int>{2} : std::vector<int>{2, 4, 8};

  std::printf("%-10s %16s %16s %14s %12s\n", "sessions", "dev tight-side", "dev wide-side",
              "jain (tight)", "mean loss%%");
  for (const int n : session_counts) {
    const auto parsed = scenarios::parse_topology(build_description(n));
    if (!parsed.ok()) {
      std::fprintf(stderr, "internal: %s\n", parsed.error.c_str());
      return 1;
    }
    scenarios::ScenarioConfig config;
    config.seed = 9300 + n;
    config.duration = bench::run_duration();
    auto scenario = scenarios::Scenario::from_description(config, *parsed.description);
    scenario->run();

    const Time half = Time::seconds(config.duration.as_seconds() / 2.0);
    double dev_tight = 0.0;
    double dev_wide = 0.0;
    double loss = 0.0;
    std::vector<double> tight_levels;
    for (const auto& r : scenario->results()) {
      const bool tight = r.name[0] == 't';
      const double dev = r.timeline.relative_deviation(r.optimal, half, config.duration);
      (tight ? dev_tight : dev_wide) += dev;
      loss += r.loss_overall;
      if (tight) {
        double mean = 0.0;
        for (int level = 0; level <= 6; ++level) {
          mean += level * r.timeline.time_at_level_fraction(level, half, config.duration);
        }
        tight_levels.push_back(mean);
      }
    }
    std::printf("%-10d %16.3f %16.3f %14.3f %12.2f\n", n, dev_tight / n, dev_wide / n,
                metrics::jain_index(tight_levels),
                100.0 * loss / static_cast<double>(scenario->results().size()));
  }
  std::printf("\nexpected: each session holds ~3 layers behind the tight bottleneck and\n"
              "~4-5 behind the wide one simultaneously — per-subtree supplies within one\n"
              "session diverge, which no single per-session rate could express.\n");
  return 0;
}
