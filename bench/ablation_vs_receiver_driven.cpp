// Ablation — TopoSense vs a receiver-driven baseline.
//
// The paper's core argument (§I, §VI): end-to-end-only schemes cannot tell
// whose loss is whose behind a shared bottleneck, and coordinating receivers
// is hard without topology. Run both schemes on both paper topologies, same
// seeds, and compare deviation / stability / loss.
#include <cstdio>

#include "common.hpp"

namespace {

struct Row {
  double dev;
  int changes;
  double loss;
};

Row summarize(const tsim::scenarios::Scenario& s, tsim::sim::Time from, tsim::sim::Time to) {
  Row row{0.0, 0, 0.0};
  for (const auto& r : s.results()) {
    row.dev += r.timeline.relative_deviation(r.optimal, from, to);
    row.changes += r.timeline.change_count(tsim::sim::Time::zero(), to);
    row.loss += r.loss_overall;
  }
  const double n = static_cast<double>(s.results().size());
  row.dev /= n;
  row.loss /= n;
  return row;
}

}  // namespace

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Ablation", "TopoSense vs receiver-driven baseline (no topology)");

  const Time duration = bench::run_duration();
  const Time half = Time::seconds(duration.as_seconds() / 2.0);

  std::printf("%-12s %-18s %16s %14s %12s\n", "topology", "scheme", "dev (2nd half)",
              "total changes", "mean loss%%");

  for (const auto kind : {scenarios::ControllerKind::kTopoSense,
                          scenarios::ControllerKind::kReceiverDriven}) {
    scenarios::ScenarioConfig config;
    config.seed = 7001;
    config.traffic.model = traffic::TrafficModel::kVbr;
    config.traffic.peak_to_mean = 3.0;
    config.duration = duration;
    config.control.kind = kind;

    scenarios::TopologyAOptions topology;
    topology.receivers_per_set = 4;
    auto scenario = scenarios::ScenarioBuilder(config).topology_a(topology).build();
    scenario->run();
    const Row row = summarize(*scenario, half, duration);
    std::printf("%-12s %-18s %16.3f %14d %12.2f\n", "A (8 recv)",
                kind == scenarios::ControllerKind::kTopoSense ? "TopoSense" : "receiver-driven",
                row.dev, row.changes, 100.0 * row.loss);
  }

  for (const auto kind : {scenarios::ControllerKind::kTopoSense,
                          scenarios::ControllerKind::kReceiverDriven}) {
    scenarios::ScenarioConfig config;
    config.seed = 7002;
    config.traffic.model = traffic::TrafficModel::kVbr;
    config.traffic.peak_to_mean = 3.0;
    config.duration = duration;
    config.control.kind = kind;

    scenarios::TopologyBOptions topology;
    topology.sessions = 8;
    auto scenario = scenarios::ScenarioBuilder(config).topology_b(topology).build();
    scenario->run();
    const Row row = summarize(*scenario, half, duration);
    std::printf("%-12s %-18s %16.3f %14d %12.2f\n", "B (8 sess)",
                kind == scenarios::ControllerKind::kTopoSense ? "TopoSense" : "receiver-driven",
                row.dev, row.changes, 100.0 * row.loss);
  }

  std::printf("\nexpected: TopoSense holds comparable or lower deviation with fewer\n"
              "subscription flaps — the controller coordinates the probes that the\n"
              "baseline's receivers perform independently against each other.\n");
  return 0;
}
