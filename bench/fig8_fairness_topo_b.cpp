// Figure 8 — Inter-session fairness in Topology B.
//
// Up to 16 sessions share one link sized so every session can ideally hold
// 4 layers. The paper plots the mean relative deviation from that optimal
// subscription over 0–600 s and 600–1200 s for CBR, VBR(P=3), VBR(P=6).
// Small deviation in both halves = fair and fully utilized sharing.
#include <cstdio>

#include "common.hpp"
#include "metrics/fairness.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Figure 8", "inter-session fairness in Topology B "
                                  "(mean relative deviation from 4-layer optimal)");

  const std::vector<int> session_counts = bench::quick_mode()
                                              ? std::vector<int>{2, 4}
                                              : std::vector<int>{1, 2, 4, 8, 12, 16};
  const Time half = Time::seconds(bench::run_duration().as_seconds() / 2.0);

  std::printf("%-10s %10s %18s %18s %12s\n", "traffic", "sessions", "dev first-half",
              "dev second-half", "jain (2nd)");
  for (const auto& tc : bench::traffic_cases()) {
    for (const int n : session_counts) {
      scenarios::ScenarioConfig config;
      config.seed = 3000 + n;
      config.duration = bench::run_duration();
      bench::apply(tc, config);

      scenarios::TopologyBOptions topology;
      topology.sessions = n;

      auto scenario = scenarios::ScenarioBuilder(config).topology_b(topology).build();
      scenario->run();

      double dev_a = 0.0;
      double dev_b = 0.0;
      std::vector<double> mean_levels;
      for (const auto& r : scenario->results()) {
        dev_a += r.timeline.relative_deviation(r.optimal, Time::zero(), half);
        dev_b += r.timeline.relative_deviation(r.optimal, half, config.duration);
        double mean = 0.0;
        for (int level = 0; level <= 6; ++level) {
          mean += level * r.timeline.time_at_level_fraction(level, half, config.duration);
        }
        mean_levels.push_back(mean);
      }
      const double count = static_cast<double>(scenario->results().size());
      std::printf("%-10s %10d %18.3f %18.3f %12.3f\n", tc.label, n, dev_a / count,
                  dev_b / count, metrics::jain_index(mean_levels));
    }
    std::printf("\n");
  }
  std::printf("paper shape: deviation is small in both halves and does not blow up\n"
              "with the number of competing sessions; the first half carries the\n"
              "startup transient so it sits slightly higher.\n");
  return 0;
}
