// Ablation — group-leave latency (paper §V).
//
// Dropping a layer does not immediately relieve congestion: the last-hop
// router keeps forwarding until the IGMP last-member query times out. Sweep
// that latency and measure how much longer congestion persists after drops.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Ablation", "IGMP group-leave latency, Topology A, CBR");

  const std::vector<double> latencies_s =
      bench::quick_mode() ? std::vector<double>{0.0, 2.0} : std::vector<double>{0.0, 0.5, 1.0, 2.0, 4.0};

  std::printf("%-16s %18s %14s %12s\n", "leave lat.[s]", "mean deviation", "total changes",
              "mean loss%%");
  for (const double latency : latencies_s) {
    scenarios::ScenarioConfig config;
    config.seed = 6003;
    config.traffic.model = traffic::TrafficModel::kCbr;
    config.duration = bench::run_duration();
    config.mcast.leave_latency = Time::seconds(latency);

    auto scenario = scenarios::ScenarioBuilder(config).topology_a(scenarios::TopologyAOptions{}).build();
    scenario->run();

    double dev = 0.0;
    int changes = 0;
    double loss = 0.0;
    for (const auto& r : scenario->results()) {
      dev += r.timeline.relative_deviation(r.optimal, Time::zero(), config.duration);
      changes += r.timeline.change_count(Time::zero(), config.duration);
      loss += r.loss_overall;
    }
    const double n = static_cast<double>(scenario->results().size());
    std::printf("%-16.1f %18.3f %14d %12.2f\n", latency, dev / n, changes,
                100.0 * loss / n);
  }
  std::printf("\nexpected: loss grows with leave latency — every failed probe keeps\n"
              "hurting the bottleneck until the prune lands. The paper proposes\n"
              "expedited leaves / controller-router interaction to shrink this.\n");
  return 0;
}
