// Generalization — random tiered Internet topologies (paper §II, Fig 2).
//
// The paper evaluates two hand-built topologies. This bench generates
// randomized three-tier ISP hierarchies, computes each receiver's offline
// optimal subscription from the true capacities (greedy lexicographic
// max-min), and measures how closely TopoSense — which never sees those
// capacities — tracks it.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Generalization", "random tiered topologies vs offline optimal");

  const int trials = bench::quick_mode() ? 2 : 6;
  const Time duration =
      bench::quick_mode() ? Time::seconds(200) : Time::seconds(600);
  const Time tail_from = Time::seconds(duration.as_seconds() / 2.0);

  std::printf("%-8s %10s %12s %18s %16s %12s\n", "trial", "receivers", "optima", "mean deviation",
              "mean level/opt", "mean loss%%");
  double dev_sum = 0.0;
  int dev_count = 0;
  for (int trial = 0; trial < trials; ++trial) {
    scenarios::ScenarioConfig config;
    config.seed = 8000 + trial;
    config.duration = duration;
    scenarios::TieredOptions options;

    auto scenario = scenarios::ScenarioBuilder(config).tiered(options).build();
    scenario->run();

    double dev = 0.0;
    double level_ratio = 0.0;
    double loss = 0.0;
    int counted = 0;
    int lo = 7;
    int hi = -1;
    for (const auto& r : scenario->results()) {
      loss += r.loss_overall;
      lo = std::min(lo, r.optimal);
      hi = std::max(hi, r.optimal);
      if (r.optimal == 0) continue;
      dev += r.timeline.relative_deviation(r.optimal, tail_from, duration);
      double mean = 0.0;
      for (int level = 0; level <= 6; ++level) {
        mean += level * r.timeline.time_at_level_fraction(level, tail_from, duration);
      }
      level_ratio += mean / r.optimal;
      ++counted;
    }
    const double n = static_cast<double>(scenario->results().size());
    std::printf("%-8d %10zu %8d..%-3d %18.3f %16.2f %12.2f\n", trial,
                scenario->results().size(), lo, hi, dev / counted, level_ratio / counted,
                100.0 * loss / n);
    dev_sum += dev / counted;
    ++dev_count;
  }
  std::printf("\nmean deviation across trials: %.3f\n", dev_sum / dev_count);
  std::printf("expected: receivers track their own (heterogeneous) optima on topologies\n"
              "the algorithm was never tuned for — the paper's subtree-independence\n"
              "argument generalizing beyond Fig 5.\n");
  return 0;
}
