// Ablation — TCP interaction (paper §VI).
//
// The paper takes "a liberal view towards TCP friendliness": most TCP
// traffic is short-lived HTTP that finishes before multicast congestion
// control even reacts, while long-lived TCP and layered multicast negotiate
// through loss. This bench puts both claims on the bench:
//  (a) short TCP transfers crossing a TopoSense-managed bottleneck finish
//      almost as fast as on an idle link, and
//  (b) a long-lived TCP flow settles into a nonzero share alongside the
//      multicast session (which steps down a layer rather than starving it).
#include <cstdio>
#include <memory>

#include "common.hpp"
#include "transport/tcp_flow.hpp"

namespace {

using namespace tsim;
using sim::Time;

struct LongLivedResult {
  double tcp_goodput_bps;
  double set1_mean_level;
};

// Topology A with a long-lived TCP flow crossing bottleneck 1 from mid-run.
LongLivedResult run_long_lived(bool with_multicast) {
  scenarios::ScenarioConfig config;
  config.seed = 9001;
  config.duration = bench::run_duration();
  if (!with_multicast) config.control.kind = scenarios::ControllerKind::kNone;

  auto scenario = scenarios::ScenarioBuilder(config).topology_a(scenarios::TopologyAOptions{}).build();

  transport::TcpFlow::Config tcfg;
  tcfg.src = 1;  // r0 (bottleneck head)
  tcfg.dst = 4;  // first set-1 receiver node
  tcfg.start = Time::seconds(config.duration.as_seconds() / 3.0);
  transport::TcpFlow tcp{scenario->simulation(), scenario->network(), scenario->demuxes(),
                         tcfg};
  tcp.start();

  scenario->run();

  LongLivedResult result{};
  result.tcp_goodput_bps = tcp.mean_goodput_bps();
  const auto& r = scenario->results()[0];
  const Time from = Time::seconds(config.duration.as_seconds() / 2.0);
  for (int level = 0; level <= 6; ++level) {
    result.set1_mean_level +=
        level * r.timeline.time_at_level_fraction(level, from, config.duration);
  }
  return result;
}

// Short transfers (HTTP-like) across the managed bottleneck.
double run_short_transfers(bool with_multicast) {
  scenarios::ScenarioConfig config;
  config.seed = 9002;
  config.duration = Time::seconds(bench::quick_mode() ? 120 : 300);
  if (!with_multicast) config.control.kind = scenarios::ControllerKind::kNone;

  auto scenario = scenarios::ScenarioBuilder(config).topology_a(scenarios::TopologyAOptions{}).build();

  // One 100 KB transfer every 20 s, r0 -> set-1 receiver.
  std::vector<std::unique_ptr<transport::TcpFlow>> transfers;
  for (int i = 0; i < static_cast<int>(config.duration.as_seconds() / 20) - 2; ++i) {
    transport::TcpFlow::Config tcfg;
    tcfg.src = 1;
    tcfg.dst = 4;
    tcfg.start = Time::seconds(40 + 20 * i);
    tcfg.transfer_bytes = 100'000;
    transfers.push_back(std::make_unique<transport::TcpFlow>(
        scenario->simulation(), scenario->network(), scenario->demuxes(), tcfg));
    transfers.back()->start();
  }
  scenario->run();

  double total = 0.0;
  int finished = 0;
  for (const auto& t : transfers) {
    if (t->finished()) {
      total += (t->completion_time() - t->config().start).as_seconds();
      ++finished;
    }
  }
  return finished == 0 ? -1.0 : total / finished;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "TCP friendliness (paper §VI), Topology A bottleneck 1");

  const LongLivedResult idle = run_long_lived(false);
  const LongLivedResult shared = run_long_lived(true);
  std::printf("long-lived TCP across the 256 Kbps bottleneck:\n");
  std::printf("  %-28s %10.0f Kbps\n", "goodput, idle link:", idle.tcp_goodput_bps / 1e3);
  std::printf("  %-28s %10.0f Kbps  (set-1 mean level %.2f)\n",
              "goodput, with TopoSense:", shared.tcp_goodput_bps / 1e3,
              shared.set1_mean_level);

  const double t_idle = run_short_transfers(false);
  const double t_shared = run_short_transfers(true);
  std::printf("\nshort 100 KB transfers (HTTP-like), mean completion time:\n");
  std::printf("  %-28s %10.2f s\n", "idle link:", t_idle);
  std::printf("  %-28s %10.2f s\n", "with TopoSense:", t_shared);

  std::printf("\nexpected: the long-lived TCP flow is largely starved — layered\n"
              "multicast only cedes bandwidth in whole layers and tolerates loss\n"
              "levels AIMD will not, exactly the non-TCP-friendliness the paper\n"
              "concedes in §VI. Its defense is the short-flow argument, visible in\n"
              "the second table: HTTP-like transfers still complete (slower, but\n"
              "within tens of seconds) because they live in the loss headroom and\n"
              "finish before multicast control would ever react to them.\n");
  return 0;
}
