// Ablation — link capacity estimator (paper §V "Estimating link capacity").
//
// Two dials: the per-interval growth applied to a finite estimate (estimates
// are conservative because reports miss in-flight bytes) and the periodic
// reset that un-sticks under-estimates. Sweep both on Topology B and check
// the accuracy of the estimate against the known shared-link capacity.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/toposense.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Ablation", "capacity estimator growth/reset, Topology B (4 sessions)");

  struct Setting {
    double growth;
    int reset_intervals;
  };
  const std::vector<Setting> settings = bench::quick_mode()
      ? std::vector<Setting>{{0.02, 25}}
      : std::vector<Setting>{{0.0, 25}, {0.02, 25}, {0.10, 25}, {0.02, 5}, {0.02, 1000}};

  std::printf("%-10s %8s %18s %16s %14s\n", "growth", "reset", "mean deviation",
              "est/true ratio", "mean loss%%");
  for (const Setting& s : settings) {
    scenarios::ScenarioConfig config;
    config.seed = 6004;
    config.traffic.model = traffic::TrafficModel::kCbr;
    config.duration = bench::run_duration();
    config.params.capacity_growth = s.growth;
    config.params.capacity_reset_intervals = s.reset_intervals;

    scenarios::TopologyBOptions topology;
    topology.sessions = 4;
    const double true_capacity = topology.per_session_bps * topology.sessions;

    auto scenario = scenarios::ScenarioBuilder(config).topology_b(topology).build();

    // Sample the estimate for the shared link (ra=0 -> rb=1) once a second.
    double est_sum = 0.0;
    int est_count = 0;
    std::function<void()> probe = [&]() {
      const double est =
          scenario->controller()->algorithm().capacities().capacity_bps(core::LinkKey{0, 1});
      if (std::isfinite(est)) {
        est_sum += est;
        ++est_count;
      }
      scenario->simulation().after(Time::seconds(1), probe);
    };
    scenario->simulation().at(Time::seconds(1), probe);

    scenario->run();

    double dev = 0.0;
    double loss = 0.0;
    for (const auto& r : scenario->results()) {
      dev += r.timeline.relative_deviation(r.optimal, Time::zero(), config.duration);
      loss += r.loss_overall;
    }
    const double n = static_cast<double>(scenario->results().size());
    const double ratio = est_count > 0 ? (est_sum / est_count) / true_capacity : 0.0;
    std::printf("%-10.2f %8d %18.3f %16.2f %14.2f\n", s.growth, s.reset_intervals, dev / n,
                ratio, 100.0 * loss / n);
  }
  std::printf("\nexpected: the estimate sits somewhat below the true capacity (loss-time\n"
              "throughput under-measures), growth nudges it up between resets, and\n"
              "never resetting (1000) pins sessions to any early under-estimate.\n");
  return 0;
}
