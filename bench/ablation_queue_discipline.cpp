// Ablation — queue discipline: drop-tail vs RED (paper §V "Dealing with
// bursty traffic": burst-induced tail drops are misread as congestion; RED's
// early random drops desynchronize bursts and smooth the loss signal).
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Ablation", "drop-tail vs RED queues, Topology B, VBR(P=6)");

  std::printf("%-10s %10s %18s %14s %12s\n", "queues", "sessions", "mean deviation",
              "total changes", "mean loss%%");
  for (const int sessions : bench::quick_mode() ? std::vector<int>{4} : std::vector<int>{4, 8}) {
    for (const bool red : {false, true}) {
      scenarios::ScenarioConfig config;
      config.seed = 9100 + sessions;
      config.traffic.model = traffic::TrafficModel::kVbr;
      config.traffic.peak_to_mean = 6.0;
      config.duration = bench::run_duration();
      config.queues.red = red;

      scenarios::TopologyBOptions topology;
      topology.sessions = sessions;
      auto scenario = scenarios::ScenarioBuilder(config).topology_b(topology).build();
      scenario->run();

      double dev = 0.0;
      int changes = 0;
      double loss = 0.0;
      for (const auto& r : scenario->results()) {
        dev += r.timeline.relative_deviation(r.optimal, Time::zero(), config.duration);
        changes += r.timeline.change_count(Time::zero(), config.duration);
        loss += r.loss_overall;
      }
      const double n = static_cast<double>(scenario->results().size());
      std::printf("%-10s %10d %18.3f %14d %12.2f\n", red ? "RED" : "drop-tail", sessions,
                  dev / n, changes, 100.0 * loss / n);
    }
  }
  std::printf("\nexpected: RED trades a floor of background early-drop loss for a\n"
              "smoother congestion signal under bursty traffic; the paper's drop-tail\n"
              "setting is the harsher environment for the loss-similarity labelling.\n");
  return 0;
}
