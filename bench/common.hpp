#pragma once

// Shared plumbing for the figure-reproduction benches: run-length control,
// traffic-model iteration, and row printing that matches the paper's series.

#include <cstdio>
#include <string>
#include <vector>

#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"

namespace bench {

/// True when TOPOSENSE_BENCH_QUICK=1: shorter runs and sparser sweeps so the
/// whole bench suite smoke-tests in seconds.
bool quick_mode();

/// Simulated duration: the paper's 1200 s, or 200 s in quick mode.
tsim::sim::Time run_duration();

struct TrafficCase {
  const char* label;
  tsim::traffic::TrafficModel model;
  double peak_to_mean;
};

/// The paper's three traffic models: CBR, VBR(P=3), VBR(P=6).
const std::vector<TrafficCase>& traffic_cases();

/// Applies a traffic case to a scenario config.
void apply(const TrafficCase& tc, tsim::scenarios::ScenarioConfig& config);

/// Prints a standard bench header naming the figure being reproduced.
void print_header(const std::string& figure, const std::string& description);

}  // namespace bench
