// Performance microbenchmarks (google-benchmark): the event kernel, the
// packet forwarding path, and the TopoSense algorithm's scaling with tree
// size. These guard the simulator's throughput — the figure benches run
// hundreds of simulated minutes and depend on it.
#include <benchmark/benchmark.h>

#include "core/toposense.hpp"
#include "scenarios/scenario.hpp"
#include "scenarios/scenario_builder.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace tsim;
using sim::Time;

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::int64_t fired = 0;
    const int n = static_cast<int>(state.range(0));
    for (int i = 0; i < n; ++i) {
      sched.schedule_at(Time::microseconds(i), [&fired] { ++fired; });
    }
    sched.run_until(Time::seconds(std::int64_t{10}));
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerChurn)->Arg(1000)->Arg(100000);

void BM_SelfRescheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Scheduler sched;
    std::int64_t count = 0;
    std::function<void()> chain = [&] {
      if (++count < state.range(0)) sched.schedule_after(Time::microseconds(1), chain);
    };
    sched.schedule_at(Time::zero(), chain);
    sched.run_until(Time::seconds(std::int64_t{100}));
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelfRescheduling)->Arg(100000);

void BM_ScenarioSimulatedMinute(benchmark::State& state) {
  // End-to-end: one simulated minute of Topology B with `range` sessions.
  for (auto _ : state) {
    scenarios::ScenarioConfig config;
    config.seed = 1;
    config.duration = Time::seconds(std::int64_t{60});
    scenarios::TopologyBOptions topology;
    topology.sessions = static_cast<int>(state.range(0));
    auto scenario = scenarios::ScenarioBuilder(config).topology_b(topology).build();
    scenario->run();
    benchmark::DoNotOptimize(scenario->results().size());
  }
}
BENCHMARK(BM_ScenarioSimulatedMinute)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

core::AlgorithmInput fat_tree_input(int receivers) {
  core::AlgorithmInput in;
  in.window = Time::seconds(std::int64_t{1});
  core::SessionInput s;
  s.session = 0;
  s.source = 1;
  core::SessionNodeInput root;
  root.node = 1;
  root.parent = net::kInvalidNode;
  s.nodes.push_back(root);
  // Two-level tree: 16 routers, receivers spread below.
  for (int r = 0; r < 16; ++r) {
    core::SessionNodeInput router;
    router.node = static_cast<net::NodeId>(10 + r);
    router.parent = 1;
    s.nodes.push_back(router);
  }
  for (int i = 0; i < receivers; ++i) {
    core::SessionNodeInput rcv;
    rcv.node = static_cast<net::NodeId>(1000 + i);
    rcv.parent = static_cast<net::NodeId>(10 + (i % 16));
    rcv.is_receiver = true;
    rcv.loss_rate = tsim::units::LossFraction{(i % 7 == 0) ? 0.1 : 0.0};
    rcv.bytes_received = tsim::units::Bytes{28'000};
    rcv.subscription = 3;
    s.nodes.push_back(rcv);
  }
  in.sessions.push_back(s);
  return in;
}

void BM_TopoSenseInterval(benchmark::State& state) {
  core::Params params;
  core::TopoSense algo{params, sim::Rng{1}};
  const core::AlgorithmInput input = fat_tree_input(static_cast<int>(state.range(0)));
  Time t = Time::seconds(std::int64_t{1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.run_interval(input, t));
    t += Time::seconds(std::int64_t{1});
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TopoSenseInterval)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
