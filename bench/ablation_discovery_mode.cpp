// Ablation — oracle vs packet-based topology discovery.
//
// The paper assumes "tree topology is available and assess[es] how it can be
// put to use", studying only staleness. This ablation swaps the oracle for an
// mtrace-style tool whose queries/responses are real packets: discovery now
// costs bandwidth (linear in receivers, §V), takes an RTT, and loses messages
// under exactly the congestion it is trying to manage.
#include <cstdio>

#include "common.hpp"
#include "topo/mtrace.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Ablation", "oracle vs mtrace-style packet discovery, Topology A");

  const std::vector<int> receiver_counts =
      bench::quick_mode() ? std::vector<int>{2} : std::vector<int>{2, 4, 8};

  std::printf("%-10s %12s %18s %14s %18s\n", "mode", "recv/set", "mean deviation",
              "mean loss%%", "discovery pkts");
  for (const int n : receiver_counts) {
    for (const auto mode : {scenarios::DiscoveryMode::kOracle, scenarios::DiscoveryMode::kMtrace}) {
      scenarios::ScenarioConfig config;
      config.seed = 6006;
      config.duration = bench::run_duration();
      config.control.discovery = mode;
      scenarios::TopologyAOptions options;
      options.receivers_per_set = n;

      auto scenario = scenarios::ScenarioBuilder(config).topology_a(options).build();
      scenario->run();

      double dev = 0.0;
      double loss = 0.0;
      for (const auto& r : scenario->results()) {
        dev += r.timeline.relative_deviation(r.optimal, Time::zero(), config.duration);
        loss += r.loss_overall;
      }
      const double count = static_cast<double>(scenario->results().size());
      std::uint64_t pkts = 0;
      if (const auto* mtrace = dynamic_cast<topo::MtraceDiscovery*>(scenario->discovery())) {
        pkts = mtrace->queries_sent() + mtrace->responses_received();
      }
      std::printf("%-10s %12d %18.3f %14.2f %18llu\n",
                  mode == scenarios::DiscoveryMode::kOracle ? "oracle" : "mtrace", n,
                  dev / count, 100.0 * loss / count,
                  static_cast<unsigned long long>(pkts));
    }
  }
  std::printf("\nexpected: mtrace tracks the oracle closely on these small domains —\n"
              "its view lags by about one query round, the staleness regime Fig 10\n"
              "already showed to be tolerable.\n");
  return 0;
}
