// Ablation — receiver reporting cadence (paper §V "Minimizing control
// traffic": information packets per interval are linear in receivers and
// sessions; the reporting rate multiplies that constant).
//
// Reports faster than the algorithm interval give the controller
// sub-interval loss visibility; slower reports starve it. Sweep the
// report period against the fixed 2 s algorithm interval.
#include <cstdio>

#include "common.hpp"

int main() {
  using namespace tsim;
  using sim::Time;

  bench::print_header("Ablation", "receiver report period vs the 2 s algorithm interval");

  const std::vector<double> periods_s =
      bench::quick_mode() ? std::vector<double>{1.0, 2.0} : std::vector<double>{0.5, 1.0, 2.0, 4.0};

  std::printf("%-14s %18s %14s %12s %16s\n", "period[s]", "mean deviation", "total changes",
              "mean loss%%", "reports received");
  for (const double period : periods_s) {
    scenarios::ScenarioConfig config;
    config.seed = 9500;
    config.traffic.model = traffic::TrafficModel::kVbr;
    config.traffic.peak_to_mean = 3.0;
    config.duration = bench::run_duration();
    config.control.report_period = Time::seconds(period);

    auto scenario = scenarios::ScenarioBuilder(config).topology_a(scenarios::TopologyAOptions{}).build();
    scenario->run();

    double dev = 0.0;
    int changes = 0;
    double loss = 0.0;
    for (const auto& r : scenario->results()) {
      dev += r.timeline.relative_deviation(r.optimal, Time::zero(), config.duration);
      changes += r.timeline.change_count(Time::zero(), config.duration);
      loss += r.loss_overall;
    }
    const double n = static_cast<double>(scenario->results().size());
    std::printf("%-14.1f %18.3f %14d %12.2f %16llu\n", period, dev / n, changes,
                100.0 * loss / n,
                static_cast<unsigned long long>(scenario->controller()->reports_received()));
  }
  std::printf("\nexpected: a trade-off, not a free lunch — half-interval reports shave\n"
              "loss-detection latency but halve each window's sample count, making the\n"
              "loss estimates noisier (more false congestion under VBR bursts); slow\n"
              "reports lengthen every congestion episode. The paper's report-period =\n"
              "interval choice sits at the knee.\n");
  return 0;
}
